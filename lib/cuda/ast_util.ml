(* Generic traversals and queries over the CUDA AST.

   These are the workhorses of the frontend passes: bottom-up expression
   mapping, statement mapping, folds, free/declared variable collection,
   and capture-free variable substitution (the frontend guarantees
   freshness separately, so substitution here is plain). *)

open Ast

(* ------------------------------------------------------------------ *)
(* Expression traversal                                                 *)
(* ------------------------------------------------------------------ *)

(** Bottom-up expression rewriting: children first, then [f] on the node. *)
let rec map_expr (f : expr -> expr) (e : expr) : expr =
  let r = map_expr f in
  let e' =
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Builtin _ -> e
    | Unop (op, a) -> Unop (op, r a)
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Assign (a, b) -> Assign (r a, r b)
    | Op_assign (op, a, b) -> Op_assign (op, r a, r b)
    | Incdec i -> Incdec { i with lval = r i.lval }
    | Ternary (c, a, b) -> Ternary (r c, r a, r b)
    | Call (name, args) -> Call (name, List.map r args)
    | Index (a, i) -> Index (r a, r i)
    | Deref a -> Deref (r a)
    | Addr_of a -> Addr_of (r a)
    | Cast (t, a) -> Cast (t, r a)
  in
  f e'

(** Fold over all sub-expressions (pre-order, node then children). *)
let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  let acc = f acc e in
  let fr = fold_expr f in
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Builtin _ -> acc
  | Unop (_, a) | Incdec { lval = a; _ } | Deref a | Addr_of a | Cast (_, a)
    ->
      fr acc a
  | Binop (_, a, b) | Assign (a, b) | Op_assign (_, a, b) ->
      fr (fr acc a) b
  | Ternary (c, a, b) -> fr (fr (fr acc c) a) b
  | Call (_, args) -> List.fold_left fr acc args
  | Index (a, i) -> fr (fr acc a) i

let iter_expr f e = fold_expr (fun () e -> f e) () e

(* ------------------------------------------------------------------ *)
(* Statement traversal                                                  *)
(* ------------------------------------------------------------------ *)

(** Rewrite every expression inside a statement list with [f] (bottom-up
    within each expression). *)
let rec map_stmts_expr (f : expr -> expr) (stmts : stmt list) : stmt list =
  List.map (map_stmt_expr f) stmts

and map_stmt_expr f (s : stmt) : stmt =
  let me = map_expr f in
  let ms = map_stmts_expr f in
  let desc =
    match s.s with
    | Decl d -> Decl { d with d_init = Option.map me d.d_init }
    | Expr e -> Expr (me e)
    | If (c, t, e) -> If (me c, ms t, ms e)
    | For (init, cond, step, body) ->
        let init =
          match init with
          | None -> None
          | Some (For_expr e) -> Some (For_expr (me e))
          | Some (For_decl ds) ->
              Some
                (For_decl
                   (List.map
                      (fun d -> { d with d_init = Option.map me d.d_init })
                      ds))
        in
        For (init, Option.map me cond, Option.map me step, ms body)
    | While (c, body) -> While (me c, ms body)
    | Do_while (body, c) -> Do_while (ms body, me c)
    | Return e -> Return (Option.map me e)
    | (Break | Continue | Sync | Bar_sync _ | Goto _ | Label _ | Nop) as d ->
        d
    | Block b -> Block (ms b)
  in
  { s with s = desc }

(** Structure-preserving statement rewriting: [f] is applied to each
    statement after its children have been rewritten; [f] may expand a
    statement into several. *)
let rec map_stmts (f : stmt -> stmt list) (stmts : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      let desc =
        match s.s with
        | If (c, t, e) -> If (c, map_stmts f t, map_stmts f e)
        | For (i, c, st, body) -> For (i, c, st, map_stmts f body)
        | While (c, body) -> While (c, map_stmts f body)
        | Do_while (body, c) -> Do_while (map_stmts f body, c)
        | Block b -> Block (map_stmts f b)
        | d -> d
      in
      f { s with s = desc })
    stmts

(** Fold over every statement (pre-order), descending into nested lists. *)
let rec fold_stmts (f : 'a -> stmt -> 'a) (acc : 'a) (stmts : stmt list) : 'a
    =
  List.fold_left
    (fun acc s ->
      let acc = f acc s in
      match s.s with
      | If (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
      | For (_, _, _, body) | While (_, body) | Do_while (body, _) | Block body
        ->
          fold_stmts f acc body
      | _ -> acc)
    acc stmts

let iter_stmts f stmts = fold_stmts (fun () s -> f s) () stmts

(** Fold over every expression occurring anywhere in a statement list. *)
let fold_stmts_expr (f : 'a -> expr -> 'a) (acc : 'a) (stmts : stmt list) : 'a
    =
  fold_stmts
    (fun acc s ->
      match s.s with
      | Decl { d_init = Some e; _ } | Expr e | Return (Some e) -> f acc e
      | If (c, _, _) | While (c, _) | Do_while (_, c) -> f acc c
      | For (init, cond, step, _) ->
          let acc =
            match init with
            | Some (For_expr e) -> f acc e
            | Some (For_decl ds) ->
                List.fold_left
                  (fun acc (d : decl) ->
                    match d.d_init with Some e -> f acc e | None -> acc)
                  acc ds
            | None -> acc
          in
          let acc = match cond with Some e -> f acc e | None -> acc in
          (match step with Some e -> f acc e | None -> acc)
      | _ -> acc)
    acc stmts

(* ------------------------------------------------------------------ *)
(* Queries                                                              *)
(* ------------------------------------------------------------------ *)

module StrSet = Set.Make (String)

(** All local declarations in a statement list (including nested ones and
    for-loop init declarations), in source order. *)
let collect_decls (stmts : stmt list) : decl list =
  List.rev
    (fold_stmts
       (fun acc s ->
         match s.s with
         | Decl d -> d :: acc
         | For (Some (For_decl ds), _, _, _) -> List.rev_append ds acc
         | _ -> acc)
       [] stmts)

(** Names of all declared locals. *)
let declared_names stmts =
  List.map (fun d -> d.d_name) (collect_decls stmts)

(** All variable names referenced anywhere in the statements. *)
let used_names (stmts : stmt list) : StrSet.t =
  fold_stmts_expr
    (fun acc e ->
      fold_expr
        (fun acc e -> match e with Var x -> StrSet.add x acc | _ -> acc)
        acc e)
    StrSet.empty stmts

(** Variables referenced but not declared locally — i.e. kernel parameters
    and (would-be) globals. *)
let free_names (stmts : stmt list) : StrSet.t =
  let declared = StrSet.of_list (declared_names stmts) in
  StrSet.diff (used_names stmts) declared

(** All function names called anywhere in the statements. *)
let called_names (stmts : stmt list) : StrSet.t =
  fold_stmts_expr
    (fun acc e ->
      fold_expr
        (fun acc e -> match e with Call (f, _) -> StrSet.add f acc | _ -> acc)
        acc e)
    StrSet.empty stmts

(** All labels defined in the statements. *)
let labels (stmts : stmt list) : StrSet.t =
  fold_stmts
    (fun acc s -> match s.s with Label l -> StrSet.add l acc | _ -> acc)
    StrSet.empty stmts

(** Does the statement list contain any barrier ([__syncthreads] or
    [bar.sync])? *)
let has_barrier (stmts : stmt list) : bool =
  fold_stmts
    (fun acc s ->
      acc || match s.s with Sync | Bar_sync _ -> true | _ -> false)
    false stmts

(** Count of barrier statements. *)
let barrier_count (stmts : stmt list) : int =
  fold_stmts
    (fun acc s -> match s.s with Sync | Bar_sync _ -> acc + 1 | _ -> acc)
    0 stmts

(** Which built-in special values appear. *)
let used_builtins (stmts : stmt list) : builtin list =
  let l =
    fold_stmts_expr
      (fun acc e ->
        fold_expr
          (fun acc e -> match e with Builtin b -> b :: acc | _ -> acc)
          acc e)
      [] stmts
  in
  List.sort_uniq compare l

(* ------------------------------------------------------------------ *)
(* Divergence and aliasing walkers                                      *)
(* ------------------------------------------------------------------ *)

(** Fold over every statement together with the conditions of its
    enclosing [If]/loop constructs (innermost first).  Loop conditions
    are included because a barrier inside a loop whose trip count varies
    per thread diverges just like one under a thread-dependent [If]. *)
let fold_stmts_guarded (f : 'a -> guards:expr list -> stmt -> 'a) (acc : 'a)
    (stmts : stmt list) : 'a =
  let rec go guards acc stmts =
    List.fold_left
      (fun acc s ->
        let acc = f acc ~guards s in
        match s.s with
        | If (c, t, e) -> go (c :: guards) (go (c :: guards) acc t) e
        | While (c, body) | Do_while (body, c) -> go (c :: guards) acc body
        | For (_, cond, _, body) ->
            let guards =
              match cond with Some c -> c :: guards | None -> guards
            in
            go guards acc body
        | Block b -> go guards acc b
        | _ -> acc)
      acc stmts
  in
  go [] acc stmts

(** Every (variable, defining expression) pair in the statements:
    initialised declarations (including for-loop init declarations),
    assignments and compound assignments.  Increments define no *new*
    dependence (x := x +- 1) and are omitted; uninitialised declarations
    define no value and are omitted too. *)
let var_defs (stmts : stmt list) : (string * expr) list =
  let from_expr acc e =
    fold_expr
      (fun acc e ->
        match e with
        | Assign (Var x, rhs) | Op_assign (_, Var x, rhs) -> (x, rhs) :: acc
        | _ -> acc)
      acc e
  in
  let acc = fold_stmts_expr from_expr [] stmts in
  fold_stmts
    (fun acc s ->
      match s.s with
      | Decl { d_name; d_init = Some e; _ } -> (d_name, e) :: acc
      | For (Some (For_decl ds), _, _, _) ->
          List.fold_left
            (fun acc (d : decl) ->
              match d.d_init with Some e -> (d.d_name, e) :: acc | None -> acc)
            acc ds
      | _ -> acc)
    acc stmts

(** Variables whose address is taken somewhere — they can be written
    through the pointer, so their value is opaque to the def analysis. *)
let address_taken (stmts : stmt list) : StrSet.t =
  fold_stmts_expr
    (fun acc e ->
      fold_expr
        (fun acc e ->
          match e with Addr_of (Var x) -> StrSet.add x acc | _ -> acc)
        acc e)
    StrSet.empty stmts

(** Is a call to [f] inherently thread-dependent — returning a lane- or
    memory-order-dependent value even for uniform arguments?  Atomics,
    shuffles and ballots are; plain math intrinsics are not. *)
let thread_dependent_call (f : string) : bool =
  let has_prefix p =
    String.length f >= String.length p && String.sub f 0 (String.length p) = p
  in
  has_prefix "atomic" || has_prefix "__shfl" || has_prefix "__ballot"
  || has_prefix "WARP_SHFL"

(** [expr_thread_dependent ~tainted e]: may [e] evaluate differently on
    two threads of the same block, given the set [tainted] of
    thread-dependent variables?  Memory reads ([Index]/[Deref]) count as
    thread-dependent: without points-to information, a location written
    by another thread is exactly the case a divergence check must not
    miss. *)
let expr_thread_dependent ~(tainted : StrSet.t) (e : expr) : bool =
  fold_expr
    (fun acc e ->
      acc
      ||
      match e with
      | Builtin (Thread_idx _) -> true
      | Var x -> StrSet.mem x tainted
      | Index _ | Deref _ -> true
      | Call (f, _) -> thread_dependent_call f
      | _ -> false)
    false e

(** Fixpoint taint analysis: the variables that may hold values
    differing across threads of a block.  Seeds are variables whose
    address is taken (opaque writes) plus any caller-supplied [seeds]
    (e.g. prologue-defined thread-id variables whose definitions lie
    outside the analysed statements); a variable becomes tainted when
    any of its definitions is a thread-dependent expression.  Kernel
    parameters and [blockIdx]/[blockDim]/[gridDim] are block-uniform and
    never seed taint. *)
let thread_dependent_vars ?(seeds = StrSet.empty) (stmts : stmt list) :
    StrSet.t =
  let defs = var_defs stmts in
  let rec fix tainted =
    let tainted' =
      List.fold_left
        (fun acc (x, rhs) ->
          if StrSet.mem x acc then acc
          else if expr_thread_dependent ~tainted:acc rhs then StrSet.add x acc
          else acc)
        tainted defs
    in
    if StrSet.equal tainted' tainted then tainted else fix tainted'
  in
  fix (StrSet.union seeds (address_taken stmts))

(** One array access, as collected by {!array_accesses}. *)
type access = {
  acc_array : string;  (** base variable being indexed *)
  acc_index : expr;
  acc_kind : [ `Read | `Write | `Atomic ];
  acc_guards : expr list;  (** enclosing structured conditions *)
  acc_interval : int;
      (** barrier statements seen before this access in pre-order — two
          accesses with different intervals are (best-effort) separated
          by a barrier.  Loops are not unrolled, so accesses from
          different iterations of a barrier-free loop share an
          interval. *)
}

(** All [a\[i\]] accesses in the statements, classified as read, write
    or atomic, with their guard context and barrier interval.  An
    [&a\[i\]] argument to an [atomic*] intrinsic is an atomic access;
    passed to any other call it is conservatively a write. *)
let array_accesses (stmts : stmt list) : access list =
  let interval = ref 0 in
  let out = ref [] in
  let emit ~guards kind arr idx =
    out :=
      {
        acc_array = arr;
        acc_index = idx;
        acc_kind = kind;
        acc_guards = guards;
        acc_interval = !interval;
      }
      :: !out
  in
  let rec expr ~guards kind e =
    let rd = expr ~guards `Read in
    match e with
    | Index (Var a, i) ->
        emit ~guards kind a i;
        rd i
    | Index (a, i) ->
        expr ~guards kind a;
        rd i
    | Assign (lv, rhs) ->
        expr ~guards `Write lv;
        rd rhs
    | Op_assign (_, lv, rhs) ->
        expr ~guards `Write lv;
        expr ~guards `Read lv;
        rd rhs
    | Incdec { lval; _ } ->
        expr ~guards `Write lval;
        expr ~guards `Read lval
    | Call (f, args) ->
        let arg_kind =
          if String.length f >= 6 && String.sub f 0 6 = "atomic" then `Atomic
          else `Write
        in
        List.iter
          (fun arg ->
            match arg with
            | Addr_of (Index (Var a, i)) ->
                emit ~guards arg_kind a i;
                rd i
            | Addr_of inner -> expr ~guards `Write inner
            | arg -> rd arg)
          args
    | Unop (_, a) | Cast (_, a) -> expr ~guards kind a
    | Deref a -> rd a
    | Addr_of a -> expr ~guards `Write a
    | Binop (_, a, b) ->
        rd a;
        rd b
    | Ternary (c, a, b) ->
        rd c;
        expr ~guards kind a;
        expr ~guards kind b
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Builtin _ -> ()
  in
  let decl ~guards (d : decl) =
    match d.d_init with Some e -> expr ~guards `Read e | None -> ()
  in
  let rec stmt_list guards stmts = List.iter (one guards) stmts
  and one guards s =
    match s.s with
    | Decl d -> decl ~guards d
    | Expr e -> expr ~guards `Read e
    | If (c, t, e) ->
        expr ~guards `Read c;
        stmt_list (c :: guards) t;
        stmt_list (c :: guards) e
    | For (init, cond, step, body) ->
        (match init with
        | Some (For_expr e) -> expr ~guards `Read e
        | Some (For_decl ds) -> List.iter (decl ~guards) ds
        | None -> ());
        Option.iter (expr ~guards `Read) cond;
        let guards' =
          match cond with Some c -> c :: guards | None -> guards
        in
        Option.iter (expr ~guards:guards' `Read) step;
        stmt_list guards' body
    | While (c, body) | Do_while (body, c) ->
        expr ~guards `Read c;
        stmt_list (c :: guards) body
    | Return (Some e) -> expr ~guards `Read e
    | Sync | Bar_sync _ -> incr interval
    | Block b -> stmt_list guards b
    | Return None | Break | Continue | Goto _ | Label _ | Nop -> ()
  in
  stmt_list [] stmts;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Substitution                                                         *)
(* ------------------------------------------------------------------ *)

(** Rename variable occurrences and declarations according to [table]
    (old name -> new name).  The caller guarantees freshness of targets
    (see {!Hfuse_frontend.Rename}), so this is plain simultaneous
    substitution. *)
let rename_stmts (table : (string, string) Hashtbl.t) (stmts : stmt list) :
    stmt list =
  let rn x = Option.value (Hashtbl.find_opt table x) ~default:x in
  let rename_decl d = { d with d_name = rn d.d_name } in
  let stmts =
    map_stmts_expr
      (fun e -> match e with Var x -> Var (rn x) | e -> e)
      stmts
  in
  map_stmts
    (fun s ->
      match s.s with
      | Decl d -> [ { s with s = Decl (rename_decl d) } ]
      | For (Some (For_decl ds), c, st, body) ->
          [
            {
              s with
              s = For (Some (For_decl (List.map rename_decl ds)), c, st, body);
            };
          ]
      | _ -> [ s ])
    stmts

(** Substitute expressions for variables: every [Var x] with [x] in the
    table becomes the associated expression.  Declarations are not
    touched. *)
let subst_vars (table : (string, expr) Hashtbl.t) (stmts : stmt list) :
    stmt list =
  map_stmts_expr
    (fun e ->
      match e with
      | Var x -> (
          match Hashtbl.find_opt table x with Some e' -> e' | None -> e)
      | e -> e)
    stmts

(** Replace built-in special values using [f]; [f] returning [None] keeps
    the builtin unchanged. *)
let replace_builtins (f : builtin -> expr option) (stmts : stmt list) :
    stmt list =
  map_stmts_expr
    (fun e ->
      match e with
      | Builtin b -> ( match f b with Some e' -> e' | None -> e)
      | e -> e)
    stmts

(* ------------------------------------------------------------------ *)
(* Structural equality (ignores locations)                              *)
(* ------------------------------------------------------------------ *)

let equal_expr (a : expr) (b : expr) = a = b
(* expressions carry no locations, so structural equality is exact *)

let rec equal_stmt (a : stmt) (b : stmt) =
  match (a.s, b.s) with
  | Decl da, Decl db -> da = db
  | Expr ea, Expr eb -> ea = eb
  | If (ca, ta, ea), If (cb, tb, eb) ->
      ca = cb && equal_stmts ta tb && equal_stmts ea eb
  | For (ia, ca, sa, ba), For (ib, cb, sb, bb) ->
      ia = ib && ca = cb && sa = sb && equal_stmts ba bb
  | While (ca, ba), While (cb, bb) -> ca = cb && equal_stmts ba bb
  | Do_while (ba, ca), Do_while (bb, cb) -> ca = cb && equal_stmts ba bb
  | Return a, Return b -> a = b
  | Break, Break
  | Continue, Continue
  | Sync, Sync
  | Nop, Nop ->
      true
  | Bar_sync (i, n), Bar_sync (j, m) -> i = j && n = m
  | Goto a, Goto b | Label a, Label b -> String.equal a b
  | Block a, Block b -> equal_stmts a b
  | _ -> false

and equal_stmts a b =
  List.length a = List.length b && List.for_all2 equal_stmt a b

(** Statement equality modulo trivial structure: [Nop]s and singleton
    [Block]s are flattened away first.  Useful for round-trip tests where
    the printer introduces `l:;` forms. *)
let rec normalize (stmts : stmt list) : stmt list =
  List.concat_map
    (fun s ->
      match s.s with
      | Nop -> []
      | Block b -> normalize b
      | If (c, t, e) -> [ { s with s = If (c, normalize t, normalize e) } ]
      | For (i, c, st, b) -> [ { s with s = For (i, c, st, normalize b) } ]
      | While (c, b) -> [ { s with s = While (c, normalize b) } ]
      | Do_while (b, c) -> [ { s with s = Do_while (normalize b, c) } ]
      | _ -> [ s ])
    stmts

let equal_normalized a b = equal_stmts (normalize a) (normalize b)

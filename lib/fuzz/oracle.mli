(** The differential oracle: run a generated case unfused and fused and
    compare final global memory byte-for-byte.

    Verdict taxonomy matters more than the comparison itself:

    - {!Equivalent} — the pair fused, the verifier accepted it, and both
      executions agree.  The only "pass".
    - {!Rejected} — the verifier (or the fusion front-end) refused the
      pair.  Logged, never a failure: soundness only promises that
      *accepted* fusions are equivalent.
    - {!Invalid_input} — the generated input itself is broken (fails to
      typecheck, or crashes/deadlocks in the *unfused* reference run).
      A generator bug or a deliberately-invalid weight, not a pipeline
      bug; shrinking treats these as uninteresting.
    - {!Failed} — the pipeline broke its promise.  These are the bugs
      the fuzzer exists to find. *)

type failure =
  | Roundtrip of { label : string; detail : string }
      (** pretty-printed source did not reparse to an equal AST *)
  | Generate_crash of string
      (** [Hfuse.generate]/[Multi.generate] raised something other than
          a rejection *)
  | Fused_crash of string  (** fused run deadlocked or faulted *)
  | Mismatch of { buffer : string; detail : string }
      (** final memories differ *)

type verdict =
  | Equivalent
  | Rejected of string
  | Invalid_input of string
  | Failed of failure

val verdict_to_string : verdict -> string

(** Stable one-word classification — what repro files record as their
    expectation: ["equivalent"], ["rejected"], ["invalid"],
    ["fail-roundtrip"], ["fail-generate"], ["fail-fused-crash"],
    ["fail-mismatch"]. *)
val verdict_tag : verdict -> string

val is_failure : verdict -> bool

(** Run the full differential check.  [inject] rewrites the fused
    kernel between generation and execution — the hook the
    injected-bug meta-test uses to prove the oracle catches barrier
    miscounts. *)
val run : ?inject:(Cuda.Ast.fn -> Cuda.Ast.fn) -> Gen.case -> verdict

(** Differential gate for a {e supplied} fused kernel — the repair
    engine's admission oracle.  Runs the case's kernels unfused, then
    the given (repaired) fusion over byte-identical initial memory, and
    compares final snapshots.  [Equivalent] admits the repair;
    [Failed _] means the repair strategy is unsound on this case. *)
val run_repaired : Gen.case -> Hfuse_core.Hfuse.t -> verdict

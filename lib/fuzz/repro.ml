open Cuda

type t = { case : Gen.case; expect : string; detail : string option }

let of_case ~expect ?detail case = { case; expect; detail }

let kernel_header (k : Gen.kernel) : string =
  let bx, by, bz = k.g_info.block in
  Printf.sprintf "// kernel %s: block=%dx%dx%d grid=%d n=%d fill=%d smem=%d"
    k.g_info.fn.f_name bx by bz k.g_info.grid k.g_n k.g_fill_seed
    k.g_info.smem_dynamic

let to_string (t : t) : string =
  let b = Buffer.create 1024 in
  Buffer.add_string b "// hfuse-fuzz repro\n";
  Buffer.add_string b (Printf.sprintf "// seed: %d\n" t.case.c_seed);
  Buffer.add_string b (Printf.sprintf "// expect: %s\n" t.expect);
  (match t.detail with
  | Some d ->
      (* keep the header machine-parseable: one line per detail line *)
      String.split_on_char '\n' d
      |> List.iter (fun l -> Buffer.add_string b ("// detail: " ^ l ^ "\n"))
  | None -> ());
  List.iter
    (fun k -> Buffer.add_string b (kernel_header k ^ "\n"))
    t.case.c_kernels;
  Buffer.add_string b (Gen.case_source t.case);
  Buffer.add_char b '\n';
  Buffer.contents b

let line_count (t : t) : int =
  List.length (String.split_on_char '\n' (String.trim (to_string t)))

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

type header = {
  h_name : string;
  h_block : int * int * int;
  h_grid : int;
  h_n : int;
  h_fill : int;
  h_smem : int;
}

let parse_kernel_header (line : string) : (header, string) result =
  try
    Scanf.sscanf line "// kernel %s@: block=%dx%dx%d grid=%d n=%d fill=%d smem=%d"
      (fun name bx by bz grid n fill smem ->
        Ok
          {
            h_name = name;
            h_block = (bx, by, bz);
            h_grid = grid;
            h_n = n;
            h_fill = fill;
            h_smem = smem;
          })
  with Scanf.Scan_failure m -> Error ("bad kernel header: " ^ m)
     | End_of_file -> Error ("truncated kernel header: " ^ line)

let prefixed ~prefix line =
  if String.length line >= String.length prefix
     && String.sub line 0 (String.length prefix) = prefix
  then Some (String.trim (String.sub line (String.length prefix)
                            (String.length line - String.length prefix)))
  else None

let of_string (s : string) : (t, string) result =
  let lines = String.split_on_char '\n' s in
  let seed = ref None
  and expect = ref None
  and details = ref []
  and headers = ref []
  and src = Buffer.create 1024
  and err = ref None in
  List.iter
    (fun line ->
      if !err <> None then ()
      else
        match prefixed ~prefix:"// seed:" line with
        | Some v -> seed := int_of_string_opt v
        | None -> (
            match prefixed ~prefix:"// expect:" line with
            | Some v -> expect := Some v
            | None -> (
                match prefixed ~prefix:"// detail:" line with
                | Some v -> details := v :: !details
                | None -> (
                    match prefixed ~prefix:"// kernel " line with
                    | Some _ -> (
                        match parse_kernel_header line with
                        | Ok h -> headers := h :: !headers
                        | Error e -> err := Some e)
                    | None ->
                        if prefixed ~prefix:"//" line = None then begin
                          Buffer.add_string src line;
                          Buffer.add_char src '\n'
                        end))))
    lines;
  match !err with
  | Some e -> Error e
  | None -> (
      match (!expect, List.rev !headers) with
      | None, _ -> Error "missing // expect: header"
      | _, [] -> Error "no // kernel headers"
      | Some expect, headers -> (
          match
            try Ok (Parser.parse_program (Buffer.contents src))
            with Parser.Error (m, _) -> Error ("source: " ^ m)
               | Failure m -> Error ("source: " ^ m)
          with
          | Error e -> Error e
          | Ok prog -> (
              let missing = ref None in
              let kernels =
                List.filter_map
                  (fun h ->
                    match Ast.find_fn prog h.h_name with
                    | None ->
                        missing := Some h.h_name;
                        None
                    | Some fn ->
                        let kprog = { Ast.defines = []; functions = [ fn ] } in
                        Some
                          (Gen.kernel_of_fn ~prog:kprog ~fn ~block:h.h_block
                             ~grid:h.h_grid ~smem_dynamic:h.h_smem ~n:h.h_n
                             ~fill_seed:h.h_fill))
                  headers
              in
              match !missing with
              | Some name -> Error ("kernel " ^ name ^ " not found in source")
              | None ->
                  let detail =
                    match List.rev !details with
                    | [] -> None
                    | ls -> Some (String.concat "\n" ls)
                  in
                  Ok
                    {
                      case =
                        {
                          c_seed = Option.value !seed ~default:0;
                          c_kernels = kernels;
                        };
                      expect;
                      detail;
                    })))

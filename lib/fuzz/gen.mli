(** Seeded random generation of well-typed kernels in the CUDA subset.

    The generator produces kernels the whole pipeline can digest: every
    loop has a bounded trip count, every array index is masked into
    bounds, barriers only appear where all threads of a block reach them
    (unless {!weights.w_divergent_sync} deliberately asks for invalid
    input), and each kernel touches only its own global buffers so that
    any two generated kernels are fusable without cross-kernel races.
    Generation is fully deterministic for a fixed seed — the harness
    never touches the global [Random]. *)

(** Grammar weights (relative frequencies) for statement production.
    A weight of 0 disables the production. *)
type weights = {
  w_global_store : int;  (** [buf\[idx\] = e] / [buf\[idx\] op= e] *)
  w_local_assign : int;  (** [t = e] on a local scalar *)
  w_shared_store : int;  (** store to a [__shared__] array *)
  w_atomic : int;  (** [atomicAdd/Max/Min] on global or shared *)
  w_sync : int;  (** [__syncthreads()] at a block-uniform point *)
  w_if_uniform : int;  (** branch on block-uniform condition *)
  w_if_divergent : int;  (** branch on thread-dependent condition *)
  w_loop : int;  (** bounded [for] / [while] / [do]-[while] *)
  w_shuffle : int;  (** [__shfl_*_sync] into a local *)
  w_divergent_sync : int;
      (** deliberately-invalid [__syncthreads()] under a
          thread-dependent branch; 0 in the default weights — such
          kernels deadlock even unfused *)
}

val default_weights : weights

(** Parse ["sync=0,atomic=3"]-style overrides onto a base weight set.
    Keys are the field names without the [w_] prefix. *)
val weights_of_spec : weights -> string -> (weights, string) result

(** One global buffer backing a pointer parameter. *)
type buffer = { b_name : string; b_elem : Cuda.Ctype.t; b_count : int }

(** A generated kernel plus everything needed to launch it. *)
type kernel = {
  g_info : Hfuse_core.Kernel_info.t;
  g_buffers : buffer list;  (** pointer params, in parameter order *)
  g_n : int;  (** value bound to the trailing [int n] parameter *)
  g_fill_seed : int;  (** seed for deterministic buffer contents *)
}

type case = { c_seed : int; c_kernels : kernel list }

(** Rebuild a kernel record around an externally-constructed function
    (repro replay, shrinking).  Buffers are derived from the pointer
    parameters; [n] doubles as every buffer's element count. *)
val kernel_of_fn :
  prog:Cuda.Ast.program ->
  fn:Cuda.Ast.fn ->
  block:int * int * int ->
  grid:int ->
  smem_dynamic:int ->
  n:int ->
  fill_seed:int ->
  kernel

(** Replace a kernel's body, keeping its launch configuration. *)
val with_body : kernel -> Cuda.Ast.stmt list -> kernel

(** Replace a kernel's parameter list (and buffers) — shrinking only;
    the caller guarantees the body no longer references dropped
    parameters. *)
val with_params : kernel -> Cuda.Ast.param list -> kernel

val kernel_source : kernel -> string

(** Generate one kernel.  [allow_griddim] must only be set when every
    kernel of the case shares the same grid (fusion keeps the original
    [gridDim], so kernels reading it are only fusable at equal grids). *)
val generate_kernel :
  ?weights:weights ->
  prng:Kernel_corpus.Prng.t ->
  name:string ->
  grid:int ->
  allow_griddim:bool ->
  unit ->
  kernel

(** Generate a whole differential-test case: 2 (or, with probability
    1/4 when [max_kernels >= 3], 3) kernels with independent buffers. *)
val generate_case :
  ?weights:weights -> ?max_kernels:int -> seed:int -> unit -> case

val case_source : case -> string

(* Seeded random kernel generation for the differential fuzzer.

   Design constraints, in order of importance:
   1. determinism — everything flows from one SplitMix64 stream;
   2. validity — generated kernels typecheck, terminate (constant trip
      counts), stay in bounds (indices are masked with [& (count-1)]
      against power-of-two buffer sizes), and place barriers only at
      block-uniform points, so the *unfused* reference run is always
      well-defined;
   3. coverage — the statement grammar spans the constructs the fusion
      pipeline rewrites: __syncthreads, shared (static and extern)
      arrays, atomics, shuffles, divergent branches, bounded loops,
      multi-dimensional thread geometry, and blockDim/blockIdx/gridDim
      uses that stress the geometry prologue. *)

open Cuda
module Prng = Kernel_corpus.Prng

type weights = {
  w_global_store : int;
  w_local_assign : int;
  w_shared_store : int;
  w_atomic : int;
  w_sync : int;
  w_if_uniform : int;
  w_if_divergent : int;
  w_loop : int;
  w_shuffle : int;
  w_divergent_sync : int;
}

let default_weights =
  {
    w_global_store = 6;
    w_local_assign = 4;
    w_shared_store = 3;
    w_atomic = 2;
    w_sync = 2;
    w_if_uniform = 2;
    w_if_divergent = 3;
    w_loop = 3;
    w_shuffle = 1;
    w_divergent_sync = 0;
  }

let weights_of_spec (base : weights) (spec : string) :
    (weights, string) result =
  let apply w (kv : string) =
    match String.split_on_char '=' kv with
    | [ k; v ] -> (
        match (String.trim k, int_of_string_opt (String.trim v)) with
        | _, None -> Error (Fmt.str "weight %s: not an integer" kv)
        | k, Some n when n < 0 ->
            Error (Fmt.str "weight %s=%d: must be >= 0" k n)
        | "global_store", Some n -> Ok { w with w_global_store = n }
        | "local_assign", Some n -> Ok { w with w_local_assign = n }
        | "shared_store", Some n -> Ok { w with w_shared_store = n }
        | "atomic", Some n -> Ok { w with w_atomic = n }
        | "sync", Some n -> Ok { w with w_sync = n }
        | "if_uniform", Some n -> Ok { w with w_if_uniform = n }
        | "if_divergent", Some n -> Ok { w with w_if_divergent = n }
        | "loop", Some n -> Ok { w with w_loop = n }
        | "shuffle", Some n -> Ok { w with w_shuffle = n }
        | "divergent_sync", Some n -> Ok { w with w_divergent_sync = n }
        | k, Some _ -> Error (Fmt.str "unknown weight %s" k))
    | _ -> Error (Fmt.str "malformed weight %S (want key=value)" kv)
  in
  List.fold_left
    (fun acc kv -> Result.bind acc (fun w -> apply w kv))
    (Ok base)
    (List.filter
       (fun s -> String.trim s <> "")
       (String.split_on_char ',' spec))

type buffer = { b_name : string; b_elem : Ctype.t; b_count : int }

type kernel = {
  g_info : Hfuse_core.Kernel_info.t;
  g_buffers : buffer list;
  g_n : int;
  g_fill_seed : int;
}

type case = { c_seed : int; c_kernels : kernel list }

(* ------------------------------------------------------------------ *)
(* Kernel record plumbing                                               *)
(* ------------------------------------------------------------------ *)

let buffers_of_params ~n (params : Ast.param list) : buffer list =
  List.filter_map
    (fun (p : Ast.param) ->
      match p.p_type with
      | Ctype.Ptr elem -> Some { b_name = p.p_name; b_elem = elem; b_count = n }
      | _ -> None)
    params

let kernel_of_fn ~(prog : Ast.program) ~(fn : Ast.fn) ~block ~grid
    ~smem_dynamic ~n ~fill_seed : kernel =
  let info : Hfuse_core.Kernel_info.t =
    {
      fn;
      prog;
      block;
      grid;
      smem_dynamic;
      regs = Gpusim.Resource_model.estimate_fn fn;
      tunability = Hfuse_core.Kernel_info.Fixed;
    }
  in
  {
    g_info = info;
    g_buffers = buffers_of_params ~n fn.f_params;
    g_n = n;
    g_fill_seed = fill_seed;
  }

let rebuild (k : kernel) (fn : Ast.fn) : kernel =
  let prog = { k.g_info.prog with Ast.functions = [ fn ] } in
  {
    k with
    g_info = { k.g_info with fn; prog };
    g_buffers = buffers_of_params ~n:k.g_n fn.f_params;
  }

let with_body (k : kernel) (body : Ast.stmt list) : kernel =
  rebuild k { k.g_info.fn with f_body = body }

let with_params (k : kernel) (params : Ast.param list) : kernel =
  rebuild k { k.g_info.fn with f_params = params }

let kernel_source (k : kernel) : string =
  Pretty.program_to_string k.g_info.prog

let case_source (c : case) : string =
  String.concat "\n\n" (List.map kernel_source c.c_kernels)

(* ------------------------------------------------------------------ *)
(* Generation state                                                     *)
(* ------------------------------------------------------------------ *)

type gctx = {
  prng : Prng.t;
  w : weights;
  bufs : buffer list;  (** global buffers *)
  shared : buffer list;  (** static and extern shared arrays *)
  multidim : bool;  (** block.y > 1: threadIdx.y is meaningful *)
  allow_griddim : bool;
  mutable ints : string list;  (** assignable integer locals *)
  mutable floats : string list;  (** assignable float locals *)
  mutable loop_vars : string list;  (** read-only loop counters *)
  mutable fresh : int;
}

let pick ctx l = List.nth l (Prng.next_int ctx.prng ~bound:(List.length l))
let chance ctx pct = Prng.next_int ctx.prng ~bound:100 < pct
let fresh ctx prefix =
  let n = ctx.fresh in
  ctx.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

(** Weighted choice over (weight, thunk) productions; zero weights drop
    out.  The caller guarantees at least one positive weight. *)
let weighted ctx (choices : (int * (unit -> 'a)) list) : 'a =
  let choices = List.filter (fun (w, _) -> w > 0) choices in
  let total = List.fold_left (fun a (w, _) -> a + w) 0 choices in
  let r = Prng.next_int ctx.prng ~bound:total in
  let rec go r = function
    | [ (_, f) ] -> f ()
    | (w, f) :: rest -> if r < w then f () else go (r - w) rest
    | [] -> assert false
  in
  go r choices

let ilit n = Ast.Int_lit (Int64.of_int n, Ctype.Int)
let open_mask = Ast.Int_lit (0xffffffffL, Ctype.UInt)

(* float literals are multiples of 0.25: exactly representable in both
   binary32 and binary64, and printed/reparsed without rounding drama *)
let float_lit ctx =
  let n = Prng.next_int ctx.prng ~bound:33 - 16 in
  Ast.Float_lit (float_of_int n /. 4.0, Ctype.Float)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let is_float_buffer b = Ctype.is_float b.b_elem
let is_int_buffer b = Ctype.is_integer b.b_elem

let tid_atom ctx : Ast.expr =
  if ctx.multidim && chance ctx 40 then Ast.Builtin (Ast.Thread_idx Ast.Y)
  else Ast.Builtin (Ast.Thread_idx Ast.X)

let uniform_int_atom ctx : Ast.expr =
  weighted ctx
    [
      (3, fun () -> ilit (Prng.next_int ctx.prng ~bound:10));
      (2, fun () -> Ast.Builtin (Ast.Block_idx Ast.X));
      (2, fun () -> Ast.Builtin (Ast.Block_dim Ast.X));
      (1, fun () -> Ast.Var "n");
      ( (if ctx.allow_griddim then 1 else 0),
        fun () -> Ast.Builtin (Ast.Grid_dim Ast.X) );
      ( (if ctx.multidim then 1 else 0),
        fun () -> Ast.Builtin (Ast.Block_dim Ast.Y) );
    ]

let int_atom ctx : Ast.expr =
  weighted ctx
    [
      (3, fun () -> uniform_int_atom ctx);
      (3, fun () -> tid_atom ctx);
      ( (if ctx.ints = [] then 0 else 3),
        fun () -> Ast.Var (pick ctx ctx.ints) );
      ( (if ctx.loop_vars = [] then 0 else 2),
        fun () -> Ast.Var (pick ctx ctx.loop_vars) );
    ]

let rec gen_int ctx depth : Ast.expr =
  if depth <= 0 then int_atom ctx
  else
    weighted ctx
      [
        (4, fun () -> int_atom ctx);
        ( 5,
          fun () ->
            let op = pick ctx [ Ast.Add; Ast.Sub; Ast.Mul ] in
            Ast.Binop (op, gen_int ctx (depth - 1), gen_int ctx (depth - 1)) );
        ( 3,
          fun () ->
            let op = pick ctx [ Ast.Band; Ast.Bor; Ast.Bxor ] in
            Ast.Binop (op, gen_int ctx (depth - 1), gen_int ctx (depth - 1)) );
        ( 1,
          fun () ->
            let op = pick ctx [ Ast.Shl; Ast.Shr ] in
            Ast.Binop
              (op, gen_int ctx (depth - 1),
               ilit (1 + Prng.next_int ctx.prng ~bound:6)) );
        ( 2,
          fun () ->
            (* strictly positive constant divisor: no div-by-zero, no
               INT_MIN / -1 overflow *)
            let op = pick ctx [ Ast.Div; Ast.Mod ] in
            Ast.Binop
              (op, gen_int ctx (depth - 1),
               ilit (1 + Prng.next_int ctx.prng ~bound:7)) );
        ( 1,
          fun () ->
            let f = pick ctx [ "min"; "max" ] in
            Ast.Call (f, [ gen_int ctx (depth - 1); gen_int ctx (depth - 1) ]) );
        ( 1,
          fun () ->
            Ast.Ternary
              (gen_cond ctx (depth - 1), gen_int ctx (depth - 1),
               gen_int ctx (depth - 1)) );
        ( (if List.exists is_int_buffer ctx.bufs then 2 else 0),
          fun () ->
            let b = pick ctx (List.filter is_int_buffer ctx.bufs) in
            Ast.Index (Ast.Var b.b_name, gen_index ctx b (depth - 1)) );
        ( (if List.exists is_int_buffer ctx.shared then 1 else 0),
          fun () ->
            let b = pick ctx (List.filter is_int_buffer ctx.shared) in
            Ast.Index (Ast.Var b.b_name, gen_index ctx b (depth - 1)) );
        (1, fun () -> Ast.Cast (Ctype.Int, gen_float ctx (depth - 1)));
      ]

(** In-bounds index into [b]: arbitrary integer expression masked with
    the power-of-two size.  Bitwise AND of any int32 with [count-1]
    lands in [0, count). *)
and gen_index ctx (b : buffer) depth : Ast.expr =
  Ast.Binop (Ast.Band, gen_int ctx (max 0 depth), ilit (b.b_count - 1))

(** Like {!gen_index} but guaranteed thread-dependent — shared-array
    stores use it so every thread owns its own slot family and the
    verifier's uniform-write race check stays quiet. *)
and gen_tid_index ctx (b : buffer) depth : Ast.expr =
  Ast.Binop
    ( Ast.Band,
      Ast.Binop
        ( Ast.Add,
          Ast.Builtin (Ast.Thread_idx Ast.X),
          gen_int ctx (max 0 depth) ),
      ilit (b.b_count - 1) )

and gen_float ctx depth : Ast.expr =
  let atom () =
    weighted ctx
      [
        (3, fun () -> float_lit ctx);
        ( (if ctx.floats = [] then 0 else 3),
          fun () -> Ast.Var (pick ctx ctx.floats) );
        ( (if List.exists is_float_buffer ctx.bufs then 2 else 0),
          fun () ->
            let b = pick ctx (List.filter is_float_buffer ctx.bufs) in
            Ast.Index (Ast.Var b.b_name, gen_index ctx b (depth - 1)) );
        ( (if List.exists is_float_buffer ctx.shared then 1 else 0),
          fun () ->
            let b = pick ctx (List.filter is_float_buffer ctx.shared) in
            Ast.Index (Ast.Var b.b_name, gen_index ctx b (depth - 1)) );
        (1, fun () -> Ast.Cast (Ctype.Float, gen_int ctx (max 0 (depth - 1))));
      ]
  in
  if depth <= 0 then atom ()
  else
    weighted ctx
      [
        (4, fun () -> atom ());
        ( 5,
          fun () ->
            let op = pick ctx [ Ast.Add; Ast.Sub; Ast.Mul ] in
            Ast.Binop (op, gen_float ctx (depth - 1), gen_float ctx (depth - 1))
        );
        ( 1,
          fun () ->
            let f = pick ctx [ "fminf"; "fmaxf" ] in
            Ast.Call
              (f, [ gen_float ctx (depth - 1); gen_float ctx (depth - 1) ]) );
        (1, fun () -> Ast.Call ("fabsf", [ gen_float ctx (depth - 1) ]));
        ( 1,
          fun () ->
            Ast.Call ("sqrtf", [ Ast.Call ("fabsf", [ gen_float ctx (depth - 1) ]) ])
        );
        ( 1,
          fun () ->
            Ast.Ternary
              (gen_cond ctx (depth - 1), gen_float ctx (depth - 1),
               gen_float ctx (depth - 1)) );
      ]

and gen_cond ctx depth : Ast.expr =
  let cmp = pick ctx [ Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Ne ] in
  if chance ctx 75 then
    Ast.Binop (cmp, gen_int ctx depth, gen_int ctx depth)
  else Ast.Binop (cmp, gen_float ctx depth, gen_float ctx depth)

(** A condition every thread of a block agrees on (blockIdx / sizes /
    constants only) — barriers may sit underneath it. *)
let gen_uniform_cond ctx : Ast.expr =
  let cmp = pick ctx [ Ast.Lt; Ast.Gt; Ast.Eq; Ast.Ne ] in
  let lhs =
    weighted ctx
      [
        ( 3,
          fun () ->
            Ast.Binop
              ( Ast.Mod,
                Ast.Builtin (Ast.Block_idx Ast.X),
                ilit (2 + Prng.next_int ctx.prng ~bound:2) ) );
        (2, fun () -> Ast.Builtin (Ast.Block_idx Ast.X));
        (1, fun () -> Ast.Var "n");
        (1, fun () -> Ast.Builtin (Ast.Block_dim Ast.X));
      ]
  in
  Ast.Binop (cmp, lhs, ilit (Prng.next_int ctx.prng ~bound:4))

(** A condition guaranteed to involve the thread id (used where the
    point is to diverge). *)
let gen_divergent_cond ctx : Ast.expr =
  let cmp = pick ctx [ Ast.Lt; Ast.Gt; Ast.Eq; Ast.Ne; Ast.Le; Ast.Ge ] in
  Ast.Binop
    ( cmp,
      Ast.Binop
        ( Ast.Band,
          Ast.Binop (Ast.Add, tid_atom ctx, gen_int ctx 1),
          ilit 15 ),
      ilit (Prng.next_int ctx.prng ~bound:12) )

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

let value_for ctx (elem : Ctype.t) depth : Ast.expr =
  if Ctype.is_float elem then gen_float ctx depth else gen_int ctx depth

(** [sync_ok] — a barrier emitted here is reached by every thread of
    the block (we are not under a divergent branch).  Loops with
    constant trip counts preserve it. *)
let rec gen_stmt ctx ~sync_ok ~depth : Ast.stmt list =
  let w = ctx.w in
  let store_global () =
    let b = pick ctx ctx.bufs in
    let lhs = Ast.Index (Ast.Var b.b_name, gen_index ctx b 2) in
    let rhs = value_for ctx b.b_elem 2 in
    let e =
      if chance ctx 65 then Ast.Assign (lhs, rhs)
      else
        let ops =
          if Ctype.is_float b.b_elem then [ Ast.Add; Ast.Sub; Ast.Mul ]
          else [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Bxor; Ast.Bor; Ast.Band ]
        in
        Ast.Op_assign (pick ctx ops, lhs, rhs)
    in
    [ Ast.mk_stmt (Ast.Expr e) ]
  in
  let assign_local () =
    if ctx.ints = [] && ctx.floats = [] then store_global ()
    else
      let use_int =
        ctx.floats = [] || (ctx.ints <> [] && chance ctx 50)
      in
      let e =
        if use_int then
          Ast.Assign (Ast.Var (pick ctx ctx.ints), gen_int ctx 2)
        else Ast.Assign (Ast.Var (pick ctx ctx.floats), gen_float ctx 2)
      in
      [ Ast.mk_stmt (Ast.Expr e) ]
  in
  let store_shared () =
    match ctx.shared with
    | [] -> store_global ()
    | _ ->
        let b = pick ctx ctx.shared in
        let lhs = Ast.Index (Ast.Var b.b_name, gen_tid_index ctx b 1) in
        let rhs = value_for ctx b.b_elem 2 in
        let e =
          if chance ctx 70 then Ast.Assign (lhs, rhs)
          else Ast.Op_assign (Ast.Add, lhs, rhs)
        in
        [ Ast.mk_stmt (Ast.Expr e) ]
  in
  let atomic () =
    let targets = ctx.bufs @ List.filter (fun b -> b.b_count > 0) ctx.shared in
    let b = pick ctx targets in
    let addr = Ast.Addr_of (Ast.Index (Ast.Var b.b_name, gen_index ctx b 1)) in
    let f =
      if Ctype.is_float b.b_elem then "atomicAdd"
      else pick ctx [ "atomicAdd"; "atomicMax"; "atomicMin" ]
    in
    [ Ast.mk_stmt (Ast.Expr (Ast.Call (f, [ addr; value_for ctx b.b_elem 1 ]))) ]
  in
  let sync () = [ Ast.mk_stmt Ast.Sync ] in
  let divergent_sync () =
    [
      Ast.mk_stmt
        (Ast.If (gen_divergent_cond ctx, [ Ast.mk_stmt Ast.Sync ], []));
    ]
  in
  let if_uniform () =
    let then_ = gen_body ctx ~sync_ok ~depth:(depth - 1) ~stmts:2 in
    let else_ =
      if chance ctx 40 then gen_body ctx ~sync_ok ~depth:(depth - 1) ~stmts:1
      else []
    in
    [ Ast.mk_stmt (Ast.If (gen_uniform_cond ctx, then_, else_)) ]
  in
  let if_divergent () =
    let then_ = gen_body ctx ~sync_ok:false ~depth:(depth - 1) ~stmts:2 in
    let else_ =
      if chance ctx 40 then
        gen_body ctx ~sync_ok:false ~depth:(depth - 1) ~stmts:1
      else []
    in
    [ Ast.mk_stmt (Ast.If (gen_divergent_cond ctx, then_, else_)) ]
  in
  let loop () =
    let trip = 1 + Prng.next_int ctx.prng ~bound:4 in
    match Prng.next_int ctx.prng ~bound:3 with
    | 0 ->
        (* for (int i = 0; i < trip; i++) { ... } *)
        let i = fresh ctx "i" in
        ctx.loop_vars <- i :: ctx.loop_vars;
        let body = gen_body ctx ~sync_ok ~depth:(depth - 1) ~stmts:2 in
        ctx.loop_vars <- List.filter (fun v -> v <> i) ctx.loop_vars;
        [
          Ast.mk_stmt
            (Ast.For
               ( Some
                   (Ast.For_decl
                      [
                        {
                          d_name = i;
                          d_type = Ctype.Int;
                          d_storage = Ast.Local;
                          d_init = Some (ilit 0);
                        };
                      ]),
                 Some (Ast.Binop (Ast.Lt, Ast.Var i, ilit trip)),
                 Some (Ast.Incdec { pre = false; inc = true; lval = Ast.Var i }),
                 body ));
        ]
    | 1 ->
        (* int w = trip; while (w > 0) { ...; w = w - 1; } *)
        let v = fresh ctx "w" in
        ctx.loop_vars <- v :: ctx.loop_vars;
        let body = gen_body ctx ~sync_ok ~depth:(depth - 1) ~stmts:2 in
        ctx.loop_vars <- List.filter (fun x -> x <> v) ctx.loop_vars;
        let dec =
          Ast.mk_stmt
            (Ast.Expr
               (Ast.Assign (Ast.Var v, Ast.Binop (Ast.Sub, Ast.Var v, ilit 1))))
        in
        [
          Ast.decl ~init:(ilit trip) v Ctype.Int;
          Ast.mk_stmt
            (Ast.While (Ast.Binop (Ast.Gt, Ast.Var v, ilit 0), body @ [ dec ]));
        ]
    | _ ->
        (* int w = trip; do { ...; w = w - 1; } while (w > 0); *)
        let v = fresh ctx "d" in
        ctx.loop_vars <- v :: ctx.loop_vars;
        let body = gen_body ctx ~sync_ok ~depth:(depth - 1) ~stmts:2 in
        ctx.loop_vars <- List.filter (fun x -> x <> v) ctx.loop_vars;
        let dec =
          Ast.mk_stmt
            (Ast.Expr
               (Ast.Assign (Ast.Var v, Ast.Binop (Ast.Sub, Ast.Var v, ilit 1))))
        in
        [
          Ast.decl ~init:(ilit trip) v Ctype.Int;
          Ast.mk_stmt
            (Ast.Do_while
               (body @ [ dec ], Ast.Binop (Ast.Gt, Ast.Var v, ilit 0)));
        ]
  in
  let shuffle () =
    if ctx.ints = [] && ctx.floats = [] then store_global ()
    else
      let use_int = ctx.floats = [] || (ctx.ints <> [] && chance ctx 50) in
      let v = if use_int then pick ctx ctx.ints else pick ctx ctx.floats in
      let f = pick ctx [ "__shfl_xor_sync"; "__shfl_down_sync" ] in
      let lane = pick ctx [ 1; 2; 4; 8; 16 ] in
      [
        Ast.mk_stmt
          (Ast.Expr
             (Ast.Assign
                (Ast.Var v, Ast.Call (f, [ open_mask; Ast.Var v; ilit lane ]))));
      ]
  in
  weighted ctx
    [
      (w.w_global_store, store_global);
      (w.w_local_assign, assign_local);
      ((if ctx.shared = [] then 0 else w.w_shared_store), store_shared);
      (w.w_atomic, atomic);
      ((if sync_ok then w.w_sync else 0), sync);
      ((if sync_ok then w.w_divergent_sync else 0), divergent_sync);
      ((if depth > 0 then w.w_if_uniform else 0), if_uniform);
      ((if depth > 0 then w.w_if_divergent else 0), if_divergent);
      ((if depth > 0 then w.w_loop else 0), loop);
      (w.w_shuffle, shuffle);
    ]

and gen_body ctx ~sync_ok ~depth ~stmts : Ast.stmt list =
  List.concat
    (List.init stmts (fun _ -> gen_stmt ctx ~sync_ok ~depth))

(* ------------------------------------------------------------------ *)
(* Whole kernels and cases                                              *)
(* ------------------------------------------------------------------ *)

let block_shapes = [ (32, 1, 1); (64, 1, 1); (96, 1, 1); (128, 1, 1);
                     (32, 2, 1); (16, 4, 1) ]

let elem_choices = [ Ctype.Float; Ctype.Int; Ctype.UInt ]

let generate_kernel ?(weights = default_weights) ~(prng : Prng.t)
    ~(name : string) ~(grid : int) ~(allow_griddim : bool) () : kernel =
  let pickl l = List.nth l (Prng.next_int prng ~bound:(List.length l)) in
  let block = pickl block_shapes in
  let bx, by, _ = block in
  let n = pickl [ 64; 128; 256 ] in
  let nbufs = 1 + Prng.next_int prng ~bound:3 in
  let bufs =
    List.init nbufs (fun i ->
        {
          b_name = Printf.sprintf "%s_b%d" name i;
          b_elem = pickl elem_choices;
          b_count = n;
        })
  in
  (* shared arrays: up to two static, at most one extern *)
  let shared = ref [] in
  if Prng.next_int prng ~bound:100 < 55 then
    shared :=
      {
        b_name = Printf.sprintf "%s_sh0" name;
        b_elem = pickl [ Ctype.Float; Ctype.Int ];
        b_count = pickl [ 32; 64 ];
      }
      :: !shared;
  if !shared <> [] && Prng.next_int prng ~bound:100 < 30 then
    shared :=
      {
        b_name = Printf.sprintf "%s_sh1" name;
        b_elem = pickl [ Ctype.Float; Ctype.Int ];
        b_count = 32;
      }
      :: !shared;
  let extern_shared =
    if Prng.next_int prng ~bound:100 < 30 then
      Some
        {
          b_name = Printf.sprintf "%s_dyn" name;
          b_elem = pickl [ Ctype.Float; Ctype.Int ];
          b_count = pickl [ 32; 64 ];
        }
    else None
  in
  let smem_dynamic =
    match extern_shared with
    | None -> 0
    | Some b -> b.b_count * Ctype.sizeof b.b_elem
  in
  let ctx =
    {
      prng;
      w = weights;
      bufs;
      shared = !shared @ Option.to_list extern_shared;
      multidim = by > 1;
      allow_griddim;
      ints = [];
      floats = [];
      loop_vars = [];
      fresh = 0;
    }
  in
  (* declarations: shared arrays first, then seeded locals *)
  let shared_decls =
    List.map
      (fun b ->
        Ast.decl ~storage:Ast.Shared b.b_name
          (Ctype.Array (b.b_elem, Some b.b_count)))
      !shared
    @ (match extern_shared with
      | None -> []
      | Some b ->
          [
            Ast.decl ~storage:Ast.Shared_extern b.b_name
              (Ctype.Array (b.b_elem, None));
          ])
  in
  let local_decls =
    let n_ints = 1 + Prng.next_int prng ~bound:3 in
    let n_floats = 1 + Prng.next_int prng ~bound:2 in
    let ds = ref [] in
    for _ = 1 to n_ints do
      let v = fresh ctx "t" in
      let d = Ast.decl ~init:(gen_int ctx 2) v Ctype.Int in
      ctx.ints <- v :: ctx.ints;
      ds := d :: !ds
    done;
    for _ = 1 to n_floats do
      let v = fresh ctx "f" in
      let d = Ast.decl ~init:(gen_float ctx 2) v Ctype.Float in
      ctx.floats <- v :: ctx.floats;
      ds := d :: !ds
    done;
    List.rev !ds
  in
  let stmts = 3 + Prng.next_int prng ~bound:5 in
  let main = gen_body ctx ~sync_ok:true ~depth:2 ~stmts in
  (* every kernel ends with an observable store so no case degenerates
     into a no-op *)
  let final_store =
    let b = List.hd bufs in
    let gidx =
      Ast.Binop
        ( Ast.Band,
          Ast.Binop
            ( Ast.Add,
              Ast.Builtin (Ast.Thread_idx Ast.X),
              Ast.Binop
                ( Ast.Mul,
                  Ast.Builtin (Ast.Block_idx Ast.X),
                  Ast.Builtin (Ast.Block_dim Ast.X) ) ),
          ilit (b.b_count - 1) )
    in
    let v = value_for ctx b.b_elem 2 in
    [ Ast.mk_stmt (Ast.Expr (Ast.Op_assign (Ast.Add, Ast.Index (Ast.Var b.b_name, gidx), v))) ]
  in
  let body = shared_decls @ local_decls @ main @ final_store in
  let params =
    List.map
      (fun b -> { Ast.p_name = b.b_name; p_type = Ctype.Ptr b.b_elem })
      bufs
    @ [ { Ast.p_name = "n"; p_type = Ctype.Int } ]
  in
  let fn =
    {
      Ast.f_name = name;
      f_kind = Ast.Global;
      f_params = params;
      f_ret = Ctype.Void;
      f_body = body;
      f_launch_bounds = None;
    }
  in
  ignore bx;
  let prog = { Ast.defines = []; functions = [ fn ] } in
  kernel_of_fn ~prog ~fn ~block ~grid ~smem_dynamic ~n
    ~fill_seed:(Prng.next_int prng ~bound:1_000_000)

let generate_case ?(weights = default_weights) ?(max_kernels = 2)
    ~(seed : int) () : case =
  let prng = Prng.create seed in
  let nk =
    if max_kernels >= 3 && Prng.next_int prng ~bound:100 < 25 then 3 else 2
  in
  let same_grid = Prng.next_int prng ~bound:100 < 60 in
  let shared_grid = 1 + Prng.next_int prng ~bound:2 in
  let grids =
    List.init nk (fun _ ->
        if same_grid then shared_grid else 1 + Prng.next_int prng ~bound:2)
  in
  let uniform = List.for_all (fun g -> g = List.hd grids) grids in
  let kernels =
    List.mapi
      (fun i g ->
        generate_kernel ~weights ~prng ~name:(Printf.sprintf "k%d" i) ~grid:g
          ~allow_griddim:uniform ())
      grids
  in
  { c_seed = seed; c_kernels = kernels }

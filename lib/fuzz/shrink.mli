(** Delta-debugging minimizer for failing fuzz cases.

    [minimize pred case] greedily applies structural reductions —
    dropping whole kernels, deleting statements, unwrapping loop and
    branch bodies, replacing expressions by their subexpressions,
    collapsing the launch geometry, and pruning unused parameters —
    keeping a candidate only when [pred] still holds (the candidate
    still exhibits the failure), and iterates to a fixpoint or until
    the attempt [budget] runs out.

    Candidates that break the generator's invariants (out-of-bounds
    after unmasking, ill-typed after a cast removal, ...) are harmless:
    the oracle classifies them as invalid input, [pred] returns false,
    and the candidate is discarded. *)

val minimize :
  ?budget:int -> (Gen.case -> bool) -> Gen.case -> Gen.case * int
(** Returns the minimized case and the number of candidate evaluations
    spent.  [budget] bounds evaluations (default 2000). *)

(** Self-contained repro files.

    A repro is plain CUDA source prefixed with [//] headers carrying
    everything the source cannot: the seed it came from, the expected
    verdict tag, and each kernel's launch configuration.  The same
    format serves failure artifacts written by the driver and the
    committed seed-corpus regressions replayed by the test suite.

    {v
    // hfuse-fuzz repro
    // seed: 42
    // expect: fail-mismatch
    // detail: FAIL mismatch in k0_b0: ...
    // kernel k0: block=32x1x1 grid=2 n=128 fill=1234 smem=0
    // kernel k1: block=64x1x1 grid=2 n=64 fill=99 smem=256
    __global__ void k0(float* k0_b0, int n) { ... }
    __global__ void k1(...) { ... }
    v} *)

type t = {
  case : Gen.case;
  expect : string;  (** {!Oracle.verdict_tag} expected on replay *)
  detail : string option;  (** free-form context, not machine-read *)
}

val to_string : t -> string

(** Parse a repro; errors name the offending header or parse failure. *)
val of_string : string -> (t, string) result

val of_case : expect:string -> ?detail:string -> Gen.case -> t

(** Number of lines of the rendered repro ([to_string]), the size the
    minimization acceptance criterion is stated in. *)
val line_count : t -> int

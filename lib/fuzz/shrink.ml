open Cuda

(* ------------------------------------------------------------------ *)
(* Counted statement surgery                                            *)
(* ------------------------------------------------------------------ *)

(** Apply [f] to the [n]-th statement of a pre-order traversal
    (descending into nested bodies); [None] when [n] is past the end. *)
let map_nth_stmt (body : Ast.stmt list) (n : int)
    (f : Ast.stmt -> Ast.stmt list) : Ast.stmt list option =
  let cnt = ref 0 in
  let hit = ref false in
  let rec go_list ss = List.concat_map go ss
  and go (s : Ast.stmt) =
    let i = !cnt in
    incr cnt;
    if i = n then (
      hit := true;
      f s)
    else
      match s.s with
      | Ast.If (c, t, e) -> [ { s with s = Ast.If (c, go_list t, go_list e) } ]
      | Ast.For (init, cond, step, b) ->
          [ { s with s = Ast.For (init, cond, step, go_list b) } ]
      | Ast.While (c, b) -> [ { s with s = Ast.While (c, go_list b) } ]
      | Ast.Do_while (b, c) -> [ { s with s = Ast.Do_while (go_list b, c) } ]
      | Ast.Block b -> [ { s with s = Ast.Block (go_list b) } ]
      | _ -> [ s ]
  in
  let body' = go_list body in
  if !hit then Some body' else None

let count_stmts body = Ast_util.fold_stmts (fun n _ -> n + 1) 0 body

(** Unwrapping a control construct keeps its body (both branches for
    [If]); anything else is left alone. *)
let unwrap (s : Ast.stmt) : Ast.stmt list =
  match s.s with
  | Ast.If (_, t, e) -> t @ e
  | Ast.For (_, _, _, b) | Ast.While (_, b) | Ast.Do_while (b, _) | Ast.Block b
    ->
      b
  | _ -> [ s ]

(* ------------------------------------------------------------------ *)
(* Counted expression shrinking                                         *)
(* ------------------------------------------------------------------ *)

(** Smaller expressions a node may collapse to.  Type-breaking
    alternatives are fine — the oracle rejects ill-typed candidates. *)
let shrink_alts (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Binop (_, a, b) -> [ a; b ]
  | Ast.Ternary (_, a, b) -> [ a; b ]
  | Ast.Call (_, args) -> args
  | Ast.Cast (_, inner) | Ast.Unop (_, inner) -> [ inner ]
  | Ast.Op_assign (_, lhs, rhs) -> [ Ast.Assign (lhs, rhs) ]
  | Ast.Index (a, i) when i <> Ast.int_lit 0 -> [ Ast.Index (a, Ast.int_lit 0) ]
  | _ -> []

(** Apply the [n]-th (node, alternative) expression shrink of the body.
    Sites are numbered deterministically by the traversal order of
    {!Ast_util.map_stmts_expr}, each node contributing as many sites as
    it has alternatives. *)
let shrink_nth_expr (body : Ast.stmt list) (n : int) : Ast.stmt list option =
  let cnt = ref 0 in
  let hit = ref false in
  let body' =
    Ast_util.map_stmts_expr
      (fun e ->
        let alts = List.filter (fun a -> a <> e) (shrink_alts e) in
        let base = !cnt in
        cnt := base + List.length alts;
        if (not !hit) && n >= base && n < base + List.length alts then (
          hit := true;
          List.nth alts (n - base))
        else e)
      body
  in
  if !hit then Some body' else None

(* ------------------------------------------------------------------ *)
(* Case-level candidates                                                *)
(* ------------------------------------------------------------------ *)

let with_kernel (c : Gen.case) (i : int) (k : Gen.kernel) : Gen.case =
  { c with c_kernels = List.mapi (fun j k0 -> if j = i then k else k0) c.c_kernels }

let drop_unused_params (k : Gen.kernel) : Gen.kernel option =
  let used = Ast_util.used_names k.g_info.fn.f_body in
  let keep (p : Ast.param) =
    (* [n] stays: the harness always binds it, and dropping it would
       re-index nothing of interest *)
    p.p_name = "n" || Ast_util.StrSet.mem p.p_name used
  in
  let params = List.filter keep k.g_info.fn.f_params in
  if List.length params = List.length k.g_info.fn.f_params then None
  else Some (Gen.with_params k params)

(** Lazily enumerated candidate reductions, coarsest first. *)
let candidates (c : Gen.case) : Gen.case Seq.t =
  let kernels = c.c_kernels in
  let nk = List.length kernels in
  let drop_kernel =
    if nk <= 2 then Seq.empty
    else
      Seq.init nk (fun i ->
          { c with c_kernels = List.filteri (fun j _ -> j <> i) kernels })
  in
  let geometry =
    List.to_seq kernels
    |> Seq.mapi (fun i (k : Gen.kernel) ->
           List.to_seq
             [
               (if k.g_info.grid > 1 then
                  Some
                    (with_kernel c i
                       { k with g_info = { k.g_info with grid = 1 } })
                else None);
               (if k.g_info.block <> (32, 1, 1) then
                  Some
                    (with_kernel c i
                       { k with g_info = { k.g_info with block = (32, 1, 1) } })
                else None);
             ]
           |> Seq.filter_map Fun.id)
    |> Seq.concat
  in
  let per_kernel_body mk count_sites =
    List.to_seq kernels
    |> Seq.mapi (fun i (k : Gen.kernel) ->
           let body = k.g_info.fn.f_body in
           Seq.init (count_sites body) (fun n -> (i, k, n)))
    |> Seq.concat
    |> Seq.filter_map (fun (i, (k : Gen.kernel), n) ->
           Option.map
             (fun body' -> with_kernel c i (Gen.with_body k body'))
             (mk k.g_info.fn.f_body n))
  in
  let remove_stmt =
    per_kernel_body (fun b n -> map_nth_stmt b n (fun _ -> [])) count_stmts
  in
  let unwrap_stmt =
    per_kernel_body
      (fun b n ->
        match map_nth_stmt b n unwrap with
        | Some b' when b' <> b -> Some b'
        | _ -> None)
      count_stmts
  in
  let shrink_exprs =
    per_kernel_body
      (fun b n -> shrink_nth_expr b n)
      (fun b ->
        Ast_util.fold_stmts_expr
          (fun n e -> n + List.length (shrink_alts e))
          0 b)
  in
  let prune_params =
    List.to_seq kernels
    |> Seq.mapi (fun i k -> (i, k))
    |> Seq.filter_map (fun (i, k) ->
           Option.map (with_kernel c i) (drop_unused_params k))
  in
  Seq.concat
    (List.to_seq
       [
         drop_kernel; remove_stmt; unwrap_stmt; geometry; shrink_exprs;
         prune_params;
       ])

(* ------------------------------------------------------------------ *)
(* Greedy fixpoint                                                      *)
(* ------------------------------------------------------------------ *)

let minimize ?(budget = 2000) (pred : Gen.case -> bool) (case : Gen.case) :
    Gen.case * int =
  let spent = ref 0 in
  let rec pass c =
    if !spent >= budget then c
    else
      let improved =
        Seq.find_map
          (fun cand ->
            if !spent >= budget then Some None
            else begin
              incr spent;
              if pred cand then Some (Some cand) else None
            end)
          (candidates c)
      in
      match improved with
      | Some (Some cand) -> pass cand
      | Some None | None -> c
  in
  let result = pass case in
  (result, !spent)

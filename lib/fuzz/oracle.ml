open Cuda
module Prng = Kernel_corpus.Prng
module Memory = Gpusim.Memory
module Launch = Gpusim.Launch
module Value = Gpusim.Value
module Hfuse = Hfuse_core.Hfuse
module Multi = Hfuse_core.Multi
module Diag = Hfuse_analysis.Diag

type failure =
  | Roundtrip of { label : string; detail : string }
  | Generate_crash of string
  | Fused_crash of string
  | Mismatch of { buffer : string; detail : string }

type verdict =
  | Equivalent
  | Rejected of string
  | Invalid_input of string
  | Failed of failure

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Rejected r -> "rejected: " ^ r
  | Invalid_input r -> "invalid input: " ^ r
  | Failed (Roundtrip { label; detail }) ->
      Fmt.str "FAIL roundtrip(%s): %s" label detail
  | Failed (Generate_crash d) -> "FAIL generate crash: " ^ d
  | Failed (Fused_crash d) -> "FAIL fused crash: " ^ d
  | Failed (Mismatch { buffer; detail }) ->
      Fmt.str "FAIL mismatch in %s: %s" buffer detail

let verdict_tag = function
  | Equivalent -> "equivalent"
  | Rejected _ -> "rejected"
  | Invalid_input _ -> "invalid"
  | Failed (Roundtrip _) -> "fail-roundtrip"
  | Failed (Generate_crash _) -> "fail-generate"
  | Failed (Fused_crash _) -> "fail-fused-crash"
  | Failed (Mismatch _) -> "fail-mismatch"

let is_failure = function Failed _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Memory setup                                                         *)
(* ------------------------------------------------------------------ *)

(** Allocate and deterministically fill one kernel's buffers; returns
    its positional argument list.  Called identically for the unfused
    and fused runs so both start from byte-identical memory. *)
let bind_kernel mem (k : Gen.kernel) : Value.t list =
  let prng = Prng.create k.g_fill_seed in
  let ptr_args =
    List.map
      (fun (b : Gen.buffer) ->
        let ptr =
          Memory.alloc mem ~name:b.b_name ~elem:b.b_elem ~count:b.b_count
        in
        (match b.b_elem with
        | Ctype.Float | Ctype.Double ->
            Memory.fill_floats mem ptr
              (Prng.float_array prng b.b_count ~lo:(-4.0) ~hi:4.0)
        | Ctype.Long | Ctype.ULong ->
            Memory.fill_int64s mem ptr (Prng.int64_array prng b.b_count)
        | _ ->
            Memory.fill_int32s mem ptr
              (Prng.int32_array prng b.b_count ~bound:1024));
        Value.Ptr ptr)
      k.g_buffers
  in
  ptr_args @ [ Value.Int (Int32.of_int k.g_n) ]

let diff_snapshots before after : (string * string) option =
  let rec go a b =
    match (a, b) with
    | [], [] -> None
    | (n1, b1) :: r1, (n2, b2) :: r2 ->
        if n1 <> n2 then Some (n1, Fmt.str "buffer order differs (%s vs %s)" n1 n2)
        else if Bytes.equal b1 b2 then go r1 r2
        else
          let len = min (Bytes.length b1) (Bytes.length b2) in
          let i = ref 0 in
          while !i < len && Bytes.get b1 !i = Bytes.get b2 !i do incr i done;
          Some
            ( n1,
              Fmt.str "first differing byte at offset %d (0x%02x vs 0x%02x)"
                !i
                (Char.code (Bytes.get b1 !i))
                (Char.code (Bytes.get b2 !i)) )
    | (n, _) :: _, [] | [], (n, _) :: _ ->
        Some (n, "buffer sets differ")
  in
  go before after

(* ------------------------------------------------------------------ *)
(* Phases                                                               *)
(* ------------------------------------------------------------------ *)

exception Stop of verdict

let typecheck_inputs (c : Gen.case) =
  List.iter
    (fun (k : Gen.kernel) ->
      match Typecheck.check_program_result k.g_info.prog with
      | Ok () -> ()
      | Error (msg, _) ->
          raise
            (Stop
               (Invalid_input
                  (Fmt.str "%s does not typecheck: %s" k.g_info.fn.f_name msg))))
    c.c_kernels

(** Pretty-print [prog], reparse, and require the named function to come
    back structurally identical (modulo block/Nop normalisation). *)
let roundtrip_fn ~label (prog : Ast.program) (fn : Ast.fn) =
  let src = Pretty.program_to_string prog in
  let reparsed =
    try Ok (Parser.parse_program src) with
    | Parser.Error (msg, loc) -> Error (Fmt.str "%s at %a" msg Loc.pp loc)
    | Failure msg -> Error msg
  in
  match reparsed with
  | Error detail -> raise (Stop (Failed (Roundtrip { label; detail })))
  | Ok prog' -> (
      match Ast.find_fn prog' fn.f_name with
      | None ->
          raise
            (Stop
               (Failed
                  (Roundtrip
                     { label; detail = fn.f_name ^ " lost in reparse" })))
      | Some fn' ->
          if fn'.f_params <> fn.f_params then
            raise
              (Stop
                 (Failed (Roundtrip { label; detail = "parameter list differs" })));
          if not (Ast_util.equal_normalized fn.f_body fn'.f_body) then
            raise
              (Stop
                 (Failed
                    (Roundtrip { label; detail = "body differs after reparse" }))))

let fuse (c : Gen.case) : Hfuse.t =
  try
    match c.c_kernels with
    | [ k1; k2 ] -> Hfuse.generate k1.g_info k2.g_info
    | ks -> (Multi.generate (List.map (fun (k : Gen.kernel) -> k.g_info) ks)).fused
  with
  | Diag.Unsafe_fusion diags ->
      raise (Stop (Rejected (Diag.report_to_string diags)))
  | Hfuse_core.Fuse_common.Fusion_error msg ->
      raise (Stop (Rejected ("fusion front-end: " ^ msg)))

(* Generated loops have constant trip counts <= 4 at nesting <= 2, so a
   few thousand interpreter steps per warp is generous.  A small budget
   matters to the shrinker: candidates that break a loop's structural
   decrement become infinite and must fail fast, not burn the
   simulator's default multi-million-step fuel. *)
let fuzz_loop_fuel = 20_000

let run_unfused (c : Gen.case) : (string * Bytes.t) list =
  let mem = Memory.create () in
  (try
     List.iter
       (fun (k : Gen.kernel) ->
         let args = bind_kernel mem k in
         ignore
           (Launch.launch_info ~loop_fuel:fuzz_loop_fuel mem k.g_info ~args
              ~trace_blocks:0))
       c.c_kernels
   with
  | Launch.Deadlock msg ->
      raise (Stop (Invalid_input ("unfused deadlock: " ^ msg)))
  | Launch.Launch_error msg ->
      raise (Stop (Invalid_input ("unfused launch error: " ^ msg)))
  | Launch.Sim_timeout { kernel; fuel; _ } ->
      raise
        (Stop
           (Invalid_input
              (Fmt.str "unfused %s: loop fuel %d exhausted" kernel fuel)))
  | Gpusim.Interp.Exec_error msg ->
      raise (Stop (Invalid_input ("unfused exec error: " ^ msg)))
  | Value.Runtime_error msg ->
      raise (Stop (Invalid_input ("unfused runtime error: " ^ msg))));
  Memory.snapshot mem

let run_fused ?(inject = fun fn -> fn) (c : Gen.case) (fused : Hfuse.t) :
    (string * Bytes.t) list =
  let info = Hfuse.info fused in
  let fn = inject info.fn in
  let info =
    { info with fn; prog = { info.prog with Ast.functions = [ fn ] } }
  in
  let mem = Memory.create () in
  let args = List.concat_map (bind_kernel mem) c.c_kernels in
  (try
     ignore
       (Launch.launch_info ~loop_fuel:fuzz_loop_fuel mem info ~args
          ~trace_blocks:0)
   with
  | Launch.Deadlock msg -> raise (Stop (Failed (Fused_crash ("deadlock: " ^ msg))))
  | Launch.Launch_error msg ->
      raise (Stop (Failed (Fused_crash ("launch error: " ^ msg))))
  | Launch.Sim_timeout { kernel; fuel; _ } ->
      raise
        (Stop
           (Failed
              (Fused_crash (Fmt.str "%s: loop fuel %d exhausted" kernel fuel))))
  | Gpusim.Interp.Exec_error msg ->
      raise (Stop (Failed (Fused_crash ("exec error: " ^ msg))))
  | Value.Runtime_error msg ->
      raise (Stop (Failed (Fused_crash ("runtime error: " ^ msg)))));
  Memory.snapshot mem

let run_repaired (c : Gen.case) (fused : Hfuse.t) : verdict =
  try
    if c.c_kernels = [] then Invalid_input "empty case"
    else begin
      typecheck_inputs c;
      roundtrip_fn ~label:"repaired" fused.prog fused.fn;
      let reference = run_unfused c in
      let fused_mem = run_fused c fused in
      if Memory.equal_snapshot reference fused_mem then Equivalent
      else
        match diff_snapshots reference fused_mem with
        | Some (buffer, detail) -> Failed (Mismatch { buffer; detail })
        | None -> Failed (Mismatch { buffer = "?"; detail = "snapshots differ" })
    end
  with
  | Stop v -> v
  | e -> Failed (Generate_crash (Printexc.to_string e))

let run ?inject (c : Gen.case) : verdict =
  try
    if c.c_kernels = [] then Invalid_input "empty case"
    else begin
      typecheck_inputs c;
      List.iter
        (fun (k : Gen.kernel) ->
          roundtrip_fn ~label:("input " ^ k.g_info.fn.f_name) k.g_info.prog
            k.g_info.fn)
        c.c_kernels;
      let fused =
        try fuse c
        with Stop _ as s -> raise s
      in
      roundtrip_fn ~label:"fused" fused.prog fused.fn;
      let reference = run_unfused c in
      let fused_mem = run_fused ?inject c fused in
      if Memory.equal_snapshot reference fused_mem then Equivalent
      else
        match diff_snapshots reference fused_mem with
        | Some (buffer, detail) -> Failed (Mismatch { buffer; detail })
        | None -> Failed (Mismatch { buffer = "?"; detail = "snapshots differ" })
    end
  with
  | Stop v -> v
  | Diag.Unsafe_fusion diags -> Rejected (Diag.report_to_string diags)
  | Hfuse_core.Fuse_common.Fusion_error msg -> Rejected ("fusion: " ^ msg)
  | e -> Failed (Generate_crash (Printexc.to_string e))

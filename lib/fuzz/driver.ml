open Cuda
module Prng = Kernel_corpus.Prng
module Pool = Hfuse_parallel.Pool
module Repair = Hfuse_repair.Repair

type config = {
  runs : int;
  seed : int;
  jobs : int;
  out_dir : string option;
  weights : Gen.weights;
  max_kernels : int;
  minimize : bool;
  shrink_budget : int;
  inject : (Ast.fn -> Ast.fn) option;
  repair : bool;
}

let default_config =
  {
    runs = 100;
    seed = 42;
    jobs = 1;
    out_dir = None;
    weights = Gen.default_weights;
    max_kernels = 3;
    minimize = true;
    shrink_budget = 2000;
    inject = None;
    repair = false;
  }

type failure = {
  fail_seed : int;
  fail_index : int;
  verdict : Oracle.verdict;
  repro : Repro.t;
  shrink_attempts : int;
}

type report = {
  total : int;
  equivalent : int;
  rejected : int;
  invalid : int;
  failed : int;
  repair_attempted : int;
  repaired : int;
  repair_unsound : int;
  failures : failure list;
  repro_files : string list;
}

(* Independent per-case seeds: each run re-mixes (seed, index) through
   its own SplitMix64 stream, so results do not depend on scheduling. *)
let case_seed ~seed index =
  let p = Prng.create ((seed * 1_000_003) + index) in
  Int64.to_int (Int64.logand (Prng.next_u64 p) 0x3FFF_FFFF_FFFF_FFFFL)

let inject_barrier_count (fn : Ast.fn) : Ast.fn =
  let body =
    Ast_util.map_stmts
      (fun s ->
        match s.Ast.s with
        | Ast.Bar_sync (id, count) ->
            [ { s with s = Ast.Bar_sync (id, count + 32) } ]
        | _ -> [ s ])
      fn.f_body
  in
  { fn with f_body = body }

(* ------------------------------------------------------------------ *)

(* Repair applies to pairs only: [Repair.attempt] regenerates through
   the two-kernel [Hfuse.generate]; multi cases stay unserviced. *)
let attempt_repair (c : Gen.case) : Hfuse_core.Hfuse.t option =
  match c.c_kernels with
  | [ k1; k2 ] -> (
      match Repair.attempt k1.Gen.g_info k2.Gen.g_info with
      | Ok (r : Repair.repaired) -> Some r.fused
      | Error _ | (exception _) -> None)
  | _ -> None

type repair_status = Repaired | Repair_unsound | Unserviceable

type outcome = {
  o_index : int;
  o_seed : int;
  o_verdict : Oracle.verdict;
  o_repair : repair_status option;
  o_failure : (Oracle.verdict * Repro.t * int) option;
}

let run_one (cfg : config) index : outcome =
  let seed = case_seed ~seed:cfg.seed index in
  let case =
    Gen.generate_case ~weights:cfg.weights ~max_kernels:cfg.max_kernels ~seed ()
  in
  let verdict = Oracle.run ?inject:cfg.inject case in
  let shrink keep =
    if cfg.minimize then Shrink.minimize ~budget:cfg.shrink_budget keep case
    else (case, 0)
  in
  let failure =
    match verdict with
    | Oracle.Failed _ ->
        let tag = Oracle.verdict_tag verdict in
        let minimized, attempts =
          shrink (fun cand ->
              Oracle.verdict_tag (Oracle.run ?inject:cfg.inject cand) = tag)
        in
        let final_verdict = Oracle.run ?inject:cfg.inject minimized in
        Some
          ( verdict,
            Repro.of_case ~expect:(Oracle.verdict_tag final_verdict)
              ~detail:(Oracle.verdict_to_string final_verdict)
              minimized,
            attempts )
    | _ -> None
  in
  let repair, failure =
    match verdict with
    | Oracle.Rejected _ when cfg.repair -> (
        match attempt_repair case with
        | None -> (Some Unserviceable, failure)
        | Some fused -> (
            match Oracle.run_repaired case fused with
            | Oracle.Equivalent -> (Some Repaired, failure)
            | Oracle.Failed _ as unsound ->
                (* An oracle-refuted repair is a strategy bug.  Minimize
                   while the case stays rejected, statically repairable,
                   and refuted by the differential gate. *)
                let keeps_unsound cand =
                  match Oracle.run cand with
                  | Oracle.Rejected _ -> (
                      match attempt_repair cand with
                      | Some fused' ->
                          Oracle.is_failure (Oracle.run_repaired cand fused')
                      | None -> false)
                  | _ -> false
                in
                let minimized, attempts = shrink keeps_unsound in
                let detail =
                  match attempt_repair minimized with
                  | Some fused' ->
                      Oracle.verdict_to_string
                        (Oracle.run_repaired minimized fused')
                  | None -> Oracle.verdict_to_string unsound
                in
                ( Some Repair_unsound,
                  Some
                    ( unsound,
                      Repro.of_case ~expect:"repair-unsound" ~detail minimized,
                      attempts ) )
            | Oracle.Rejected _ | Oracle.Invalid_input _ ->
                (* the gate could not run (reference itself breaks);
                   fail closed: the repair is not admitted *)
                (Some Unserviceable, failure)))
    | _ -> (None, failure)
  in
  {
    o_index = index;
    o_seed = seed;
    o_verdict = verdict;
    o_repair = repair;
    o_failure = failure;
  }

let write_repros out_dir (failures : failure list) : string list =
  if failures = [] then []
  else begin
    (if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755);
    List.map
      (fun f ->
        let path =
          Filename.concat out_dir (Printf.sprintf "repro_%d.cu" f.fail_seed)
        in
        let oc = open_out path in
        output_string oc (Repro.to_string f.repro);
        close_out oc;
        path)
      failures
  end

let run (cfg : config) : report =
  let outcomes =
    Pool.with_pool cfg.jobs (fun pool ->
        Pool.map pool (run_one cfg) (Array.init cfg.runs Fun.id))
  in
  let count p = Array.fold_left (fun n o -> if p o.o_verdict then n + 1 else n) 0 outcomes in
  let count_repair p =
    Array.fold_left (fun n o -> if p o.o_repair then n + 1 else n) 0 outcomes
  in
  let repair_unsound = count_repair (fun r -> r = Some Repair_unsound) in
  let failures =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           match o.o_failure with
           | Some (verdict, repro, attempts) ->
               Some
                 {
                   fail_seed = o.o_seed;
                   fail_index = o.o_index;
                   verdict;
                   repro;
                   shrink_attempts = attempts;
                 }
           | None -> None)
  in
  let repro_files =
    match cfg.out_dir with
    | Some dir -> write_repros dir failures
    | None -> []
  in
  {
    total = cfg.runs;
    equivalent = count (fun v -> v = Oracle.Equivalent);
    rejected = count (function Oracle.Rejected _ -> true | _ -> false);
    invalid = count (function Oracle.Invalid_input _ -> true | _ -> false);
    failed = count Oracle.is_failure + repair_unsound;
    repair_attempted = count_repair (fun r -> r <> None);
    repaired = count_repair (fun r -> r = Some Repaired);
    repair_unsound;
    failures;
    repro_files;
  }

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>fuzz: %d runs — %d equivalent, %d rejected, %d invalid, %d FAILED@]"
    r.total r.equivalent r.rejected r.invalid r.failed;
  if r.repair_attempted > 0 then
    Fmt.pf ppf
      "@.  repair: %d/%d rejections serviceable (%.0f%%), %d unsound, %d \
       unserviceable"
      r.repaired r.repair_attempted
      (100.0 *. float_of_int r.repaired /. float_of_int r.repair_attempted)
      r.repair_unsound
      (r.repair_attempted - r.repaired - r.repair_unsound);
  List.iter
    (fun f ->
      Fmt.pf ppf "@.  run %d (seed %d): %s (%d-line repro, %d shrink attempts)"
        f.fail_index f.fail_seed
        (Oracle.verdict_to_string f.verdict)
        (Repro.line_count f.repro) f.shrink_attempts)
    r.failures;
  List.iter (fun p -> Fmt.pf ppf "@.  wrote %s" p) r.repro_files

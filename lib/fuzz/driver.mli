(** The fuzzing campaign driver: fan independent seeds over
    {!Hfuse_parallel.Pool}, minimize every failure, and report.

    Results are bit-identical for a fixed [seed] at any [jobs]: each
    case derives from its own mixed seed, [Pool.map] preserves input
    order, and repro files are written from the calling domain after
    the fan-out completes. *)

type config = {
  runs : int;
  seed : int;
  jobs : int;
  out_dir : string option;  (** where minimized repros land, if set *)
  weights : Gen.weights;
  max_kernels : int;  (** 2 = pairs only; 3 enables occasional triples *)
  minimize : bool;  (** shrink failures (on by default; tests may skip) *)
  shrink_budget : int;
  inject : (Cuda.Ast.fn -> Cuda.Ast.fn) option;
      (** fault injection on the fused kernel, for oracle meta-tests *)
  repair : bool;
      (** feed every [Rejected] pair through {!Hfuse_repair.Repair},
          gate the result with {!Oracle.run_repaired}, and report the
          serviceable fraction.  An oracle-refuted repair is a strategy
          bug: it is minimized, written as a ["repair-unsound"] repro,
          and counted under [failed]. *)
}

val default_config : config

type failure = {
  fail_seed : int;  (** the mixed per-case seed *)
  fail_index : int;  (** run index within the campaign *)
  verdict : Oracle.verdict;
  repro : Repro.t;  (** minimized (when [minimize]) repro *)
  shrink_attempts : int;
}

type report = {
  total : int;
  equivalent : int;
  rejected : int;
  invalid : int;
  failed : int;  (** oracle failures plus unsound repairs *)
  repair_attempted : int;
      (** rejected pairs fed to the repair engine (0 without
          [config.repair]; multi-kernel rejections count as
          unserviceable) *)
  repaired : int;  (** statically repaired and oracle-equivalent *)
  repair_unsound : int;
      (** statically repaired but refuted by the differential gate *)
  failures : failure list;  (** in run order *)
  repro_files : string list;  (** paths written under [out_dir] *)
}

(** The per-case seed for run [index] of a campaign — exposed so tests
    can replay a single run. *)
val case_seed : seed:int -> int -> int

(** Bump every [bar.sync] thread count by one warp — a guaranteed
    fused-side deadlock the oracle must catch.  The canonical [inject]
    for meta-testing. *)
val inject_barrier_count : Cuda.Ast.fn -> Cuda.Ast.fn

val run : config -> report

val pp_report : report Fmt.t

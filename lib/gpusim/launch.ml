(* Kernel launches: block/warp creation, shared-memory layout, argument
   binding, and the per-block warp scheduler that implements barrier
   arrival counting.

   Each warp runs as an OCaml-effects fiber: reaching a barrier performs
   {!Interp.Barrier_eff}, the scheduler captures the continuation and
   accumulates the arrival count for that barrier id; when the count
   reaches the barrier's thread count the waiters are resumed.  A state
   where no warp can run but some are blocked is a *barrier deadlock* —
   precisely what happens if a [__syncthreads()] survives un-replaced in
   a horizontally fused kernel — and is reported as {!Deadlock}. *)

open Cuda
open Hfuse_frontend

exception Deadlock of string
exception Launch_error of string

(** Fuel watchdog: a warp of [block] exhausted [fuel] interpreter loop
    iterations.  Structured so the profiler can record which candidate
    timed out and degrade gracefully instead of parsing a message. *)
exception Sim_timeout of { kernel : string; fuel : int; block : int }

let () =
  Printexc.register_printer (function
    | Sim_timeout { kernel; fuel; block } ->
        Some
          (Printf.sprintf
             "Sim_timeout(kernel %s: loop fuel %d exhausted in block %d — \
              runaway loop?)"
             kernel fuel block)
    | _ -> None)

let fail fmt = Fmt.kstr (fun s -> raise (Launch_error s)) fmt

(* Per-launch watchdog budget: interpreter loop iterations per warp.
   3M covers every corpus workload by orders of magnitude while still
   tripping on genuinely runaway kernels in seconds; [HFUSE_SIM_FUEL]
   tunes the process default, [?loop_fuel] overrides per launch. *)
let default_loop_fuel =
  match Sys.getenv_opt "HFUSE_SIM_FUEL" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 3_000_000)
  | None -> 3_000_000

(* An injected hang shrinks the budget to a token amount instead of
   looping: the watchdog then trips exactly as it would on a real
   runaway kernel, exercising the same recovery path at test speed. *)
let injected_hang_fuel = 64

type config = {
  grid : int;
  block : int * int * int;
  smem_dynamic : int;  (** bytes of [extern __shared__] memory per block *)
  trace_blocks : int;  (** record traces for the first N blocks *)
  l1_sectors : int;
      (** modelled per-block L1 capacity in 32-byte sectors (see
          [Arch.l1_sectors_per_block]); 0 disables the cache model *)
  exec_blocks : int option;
      (** execute only the first N blocks functionally (profiling mode:
          the timing model replays traces cyclically, so executing every
          block is only needed when the outputs matter).  [None] runs the
          whole grid. *)
}

type result = {
  block_traces : Trace.block array;
      (** one entry per traced block (first [trace_blocks] of the grid) *)
  grid : int;
  threads_per_block : int;
  warps_per_block : int;
}

(* ------------------------------------------------------------------ *)
(* Shared-memory layout                                                 *)
(* ------------------------------------------------------------------ *)

(** Assign byte offsets to the kernel's shared declarations.  Static
    [__shared__] arrays are packed in declaration order with natural
    alignment; every [extern __shared__] array starts at the first byte
    after the static region — CUDA semantics: all extern arrays alias the
    same dynamic buffer. *)
let shared_layout (body : Ast.stmt list) :
    (string, int * Ctype.t) Hashtbl.t * int =
  let layout = Hashtbl.create 8 in
  let static_end = ref 0 in
  List.iter
    (fun (d : Ast.decl) ->
      match (d.d_storage, d.d_type) with
      | Ast.Shared, Ctype.Array (el, Some n) ->
          let align = max 4 (Ctype.sizeof el) in
          let off = Hfuse_core.Fuse_common.align_up !static_end align in
          Hashtbl.replace layout d.d_name (off, el);
          static_end := off + (n * Ctype.sizeof el)
      | Ast.Shared, t ->
          fail "__shared__ %s must be a sized array (got %s)" d.d_name
            (Ctype.to_string t)
      | _ -> ())
    (Ast_util.collect_decls body);
  let static_end = Hfuse_core.Fuse_common.align_up !static_end 16 in
  List.iter
    (fun (d : Ast.decl) ->
      match (d.d_storage, d.d_type) with
      | Ast.Shared_extern, Ctype.Array (el, None) ->
          Hashtbl.replace layout d.d_name (static_end, el)
      | Ast.Shared_extern, t ->
          fail "extern __shared__ %s must be an unsized array (got %s)"
            d.d_name (Ctype.to_string t)
      | _ -> ())
    (Ast_util.collect_decls body);
  (layout, static_end)

(** Static shared bytes needed by a kernel body (the extern region is
    sized by the launch configuration). *)
let static_shared_bytes (body : Ast.stmt list) : int =
  snd (shared_layout body)

(* ------------------------------------------------------------------ *)
(* Per-block scheduler                                                  *)
(* ------------------------------------------------------------------ *)

type step =
  | Finished
  | Blocked of int * int * int * (unit, step) Effect.Deep.continuation
      (** barrier id, thread count, warp live threads, continuation *)

let run_fiber (f : unit -> unit) : step =
  Effect.Deep.match_with f ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Interp.Barrier_eff (id, count, live) ->
              Some
                (fun (k : (a, step) Effect.Deep.continuation) ->
                  Blocked (id, count, live, k))
          | _ -> None);
    }

type barrier_state = {
  mutable arrived : int;  (** threads arrived since last release *)
  mutable expected : int;  (** thread count of the barrier *)
  mutable waiters : (int * (unit, step) Effect.Deep.continuation) list;
      (** (warp index, continuation) *)
}

(** Run all warps of one block to completion.  [make_warp w] must return
    the warp's body thunk. *)
let run_block ~(warps : int) ~(kernel_name : string)
    (make_warp : int -> (unit -> unit)) : unit =
  let state : step option array = Array.make warps None in
  (* None = finished; Some = blocked step awaiting barrier release *)
  let pending = Queue.create () in
  for w = 0 to warps - 1 do
    Queue.add (`Start w) pending
  done;
  let barriers : (int, barrier_state) Hashtbl.t = Hashtbl.create 4 in
  let blocked_count = ref 0 in
  let arrive w id count live k =
    let b =
      match Hashtbl.find_opt barriers id with
      | Some b -> b
      | None ->
          let b = { arrived = 0; expected = count; waiters = [] } in
          Hashtbl.replace barriers id b;
          b
    in
    if b.arrived = 0 then b.expected <- count
    else if b.expected <> count then
      fail
        "kernel %s: barrier %d reached with inconsistent thread counts (%d \
         vs %d)"
        kernel_name id b.expected count;
    b.arrived <- b.arrived + live;
    b.waiters <- (w, k) :: b.waiters;
    incr blocked_count;
    if b.arrived > b.expected then
      fail "kernel %s: barrier %d over-subscribed (%d arrivals, expected %d)"
        kernel_name id b.arrived b.expected;
    if b.arrived = b.expected then begin
      (* release: all waiters become runnable *)
      let ws = List.rev b.waiters in
      b.arrived <- 0;
      b.waiters <- [];
      List.iter
        (fun (w, k) ->
          decr blocked_count;
          state.(w) <- None;
          Queue.add (`Resume (w, k)) pending)
        ws
    end
  in
  let step_result w = function
    | Finished -> state.(w) <- None
    | Blocked (id, count, live, k) ->
        state.(w) <- Some (Blocked (id, count, live, k));
        arrive w id count live k
  in
  let rec drain () =
    match Queue.take_opt pending with
    | Some (`Start w) ->
        step_result w (run_fiber (make_warp w));
        drain ()
    | Some (`Resume (w, k)) ->
        step_result w (Effect.Deep.continue k ());
        drain ()
    | None ->
        if !blocked_count > 0 then begin
          let desc =
            Hashtbl.fold
              (fun id b acc ->
                if b.waiters = [] then acc
                else
                  Fmt.str "barrier %d: %d/%d threads arrived" id b.arrived
                    b.expected
                  :: acc)
              barriers []
          in
          raise
            (Deadlock
               (Fmt.str
                  "kernel %s: barrier deadlock, %d warps blocked (%a)"
                  kernel_name !blocked_count
                  Fmt.(list ~sep:(any "; ") string)
                  (List.rev desc)))
        end
  in
  drain ()

(* ------------------------------------------------------------------ *)
(* Full launches                                                        *)
(* ------------------------------------------------------------------ *)

(** Launch [fn] (normalising it first: inlining device calls, lifting
    declarations) over the grid, executing every block functionally and
    recording dynamic traces for the first [config.trace_blocks] blocks.
    [args] bind the kernel parameters positionally. *)
let launch ?fault ?(loop_fuel = default_loop_fuel) (mem : Memory.t)
    ~(prog : Ast.program) ~(fn : Ast.fn) ~(args : Value.t list)
    (config : config) : result =
  (* chaos harness: a [sim_hang] draw (fresh key per launch) emulates a
     hung kernel by collapsing the fuel budget; the resulting watchdog
     trip is re-raised as the transient [Fault.Injected Sim_hang] so
     retry layers can distinguish it from a real runaway kernel.  The
     draw consults the caller's plan when one is threaded through
     ([?fault], e.g. one server request's plan), falling back to the
     installed process plan. *)
  let injected_hang =
    Hfuse_fault.Fault.(
      enabled ?plan:fault ()
      && fires ?plan:fault Sim_hang ~key:(fresh_key Sim_hang))
  in
  let loop_fuel = if injected_hang then min loop_fuel injected_hang_fuel else loop_fuel in
  let bx, by, bz = config.block in
  let threads = bx * by * bz in
  if threads <= 0 || threads > 1024 then
    fail "block of %d threads out of range 1..1024" threads;
  if config.grid <= 0 then fail "grid must be positive (got %d)" config.grid;
  let fn = Inline.normalize_kernel prog fn in
  if List.length args <> List.length fn.f_params then
    fail "kernel %s expects %d arguments, got %d" fn.f_name
      (List.length fn.f_params)
      (List.length args);
  let layout, static_bytes = shared_layout fn.f_body in
  let smem_bytes = static_bytes + config.smem_dynamic in
  let warp_size = 32 in
  let warps = (threads + warp_size - 1) / warp_size in
  let exec_blocks =
    match config.exec_blocks with
    | None -> config.grid
    | Some n -> min config.grid (max 1 n)
  in
  let traced = min exec_blocks (max 0 config.trace_blocks) in
  let block_traces =
    Array.init traced (fun _ ->
        Array.init warps (fun _ -> Trace.create ()))
  in
  let param_types = Hashtbl.create 8 in
  List.iter
    (fun (p : Ast.param) -> Hashtbl.replace param_types p.p_name p.p_type)
    fn.f_params;
  for block_idx = 0 to exec_blocks - 1 do
    let shared = Bytes.make smem_bytes '\000' in
    let l1 = Interp.l1_create ~sectors:config.l1_sectors in
    let make_warp w : unit -> unit =
      let base_tid = w * warp_size in
      let live_threads = min warp_size (threads - base_tid) in
      let env = Hashtbl.create 32 in
      let types = Hashtbl.create 32 in
      Hashtbl.iter (fun k v -> Hashtbl.replace types k v) param_types;
      List.iter2
        (fun (p : Ast.param) (a : Value.t) ->
          Hashtbl.replace env p.p_name (Array.make warp_size a))
        fn.f_params args;
      let trace =
        if block_idx < traced then Some block_traces.(block_idx).(w)
        else None
      in
      let ctx =
        {
          Interp.warp_size;
          warp_id = w;
          base_tid;
          live = Interp.full_of_threads live_threads;
          block_idx;
          block_dim = config.block;
          grid_dim = config.grid;
          env;
          types;
          mem;
          shared;
          shared_layout = layout;
          trace;
          l1;
          locals = Hashtbl.create 8;
          local_seq = 0;
          loop_fuel;
        }
      in
      fun () -> Interp.run_body ctx fn.f_body
    in
    (try run_block ~warps ~kernel_name:fn.f_name make_warp
     with Interp.Fuel_exhausted ->
       if injected_hang then begin
         Hfuse_fault.Fault.note_injected Hfuse_fault.Fault.Sim_hang;
         raise (Hfuse_fault.Fault.Injected Hfuse_fault.Fault.Sim_hang)
       end
       else
         raise (Sim_timeout { kernel = fn.f_name; fuel = loop_fuel; block = block_idx }))
  done;
  {
    block_traces;
    grid = config.grid;
    threads_per_block = threads;
    warps_per_block = warps;
  }

(** Launch from a {!Hfuse_core.Kernel_info.t}, the common harness path. *)
let launch_info ?exec_blocks ?(l1_sectors = 512) ?fault ?loop_fuel
    (mem : Memory.t) (info : Hfuse_core.Kernel_info.t)
    ~(args : Value.t list) ~(trace_blocks : int) : result =
  launch ?fault ?loop_fuel mem ~prog:info.prog ~fn:info.fn ~args
    {
      grid = info.grid;
      block = info.block;
      smem_dynamic = info.smem_dynamic;
      trace_blocks;
      l1_sectors;
      exec_blocks;
    }

(** Lock-step SIMT interpreter for the CUDA subset.

    Warps execute statements under an active-lane mask (divergent
    branches serialise, loops run while any lane is active,
    break/continue/return are mask outcomes).  Two things happen at
    once: the functional result lands in simulated memory, and a dynamic
    per-warp instruction trace (with coalescing and bank-conflict
    outcomes) is recorded for the timing model.

    Barriers suspend the warp via the {!Barrier_eff} effect; the block
    scheduler in {!Launch} counts arrivals per barrier id and resumes
    waiters — the PTX [bar.sync] arrival-counter semantics fused kernels
    rely on. *)

exception Exec_error of string

(** A warp exhausted its per-launch loop fuel (runaway loop).  Caught
    by {!Launch}, which re-raises it as the structured
    [Launch.Sim_timeout] with the launch context attached. *)
exception Fuel_exhausted

(** Raised by [goto]; resolved at the kernel body's top level. *)
exception Goto_exn of string

type _ Effect.t +=
  | Barrier_eff : int * int * int -> unit Effect.t
        (** (barrier id, thread count, this warp's live threads) *)

type lanes = Value.t array

(** Per-block sectored cache model (see {!Launch.config.l1_sectors}). *)
type l1_cache

val l1_create : sectors:int -> l1_cache

(** Per-warp execution context, built by {!Launch}. *)
type wctx = {
  warp_size : int;
  warp_id : int;
  base_tid : int;
  live : int;  (** mask of lanes backed by real threads *)
  block_idx : int;
  block_dim : int * int * int;
  grid_dim : int;
  env : (string, lanes) Hashtbl.t;
  types : (string, Cuda.Ctype.t) Hashtbl.t;
  mem : Memory.t;
  shared : Bytes.t;
  shared_layout : (string, int * Cuda.Ctype.t) Hashtbl.t;
  trace : Trace.t option;
  l1 : l1_cache;
  locals : (int, Bytes.t) Hashtbl.t;
  mutable local_seq : int;
  mutable loop_fuel : int;
}

val full_of_threads : int -> int
(** Mask with the low [n] bits set. *)

(** Execute a kernel body for one warp (labels resolve at the top
    statement level, where HFuse places them).
    @raise Exec_error on runtime faults, divergent gotos or barriers.
    @raise Fuel_exhausted when the warp's loop fuel runs out. *)
val run_body : wctx -> Cuda.Ast.stmt list -> unit

(* GPU architecture models.

   Two devices are modelled after the paper's testbeds: a GeForce GTX
   1080 Ti (Pascal, GP102) and a Tesla V100 (Volta, GV100).  The per-SM
   resource numbers are the real ones (both architectures: 64K registers,
   96K shared memory, 2048 threads).  SM *counts* are scaled down by a
   constant factor so the cycle-level simulation stays tractable; since
   blocks are distributed round-robin and SMs are homogeneous, per-SM
   behaviour — which is where warp scheduling, occupancy and latency
   hiding live — is unaffected, and relative speedups are preserved.
   The scale factor is recorded so reports can state absolute-throughput
   caveats honestly.

   Latency/throughput parameters are drawn from published
   microbenchmarking studies of the two architectures (Jia et al.,
   "Dissecting the NVIDIA Volta GPU architecture via microbenchmarking",
   and the corresponding Pascal numbers): ~6-cycle ALU dependent-issue
   latency (4 on Volta), ~24-30 cycle shared-memory latency, and global
   memory latency in the 400-cycle range (lower on Volta's HBM2). *)

type t = {
  name : string;
  sms : int;  (** simulated SM count (scaled; see [sm_scale]) *)
  sm_scale : int;  (** real SM count = sms * sm_scale *)
  clock_ghz : float;
  warp_size : int;
  schedulers_per_sm : int;  (** warp schedulers, each issues 1 instr/cycle *)
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;
  smem_per_sm : int;
  max_threads_per_block : int;
  (* latencies (cycles from issue to dependent-use readiness) *)
  alu_latency : int;  (** integer / fp32 pipeline *)
  dalu_latency : int;  (** fp64 pipeline *)
  sfu_latency : int;  (** special function unit: div, sqrt, transcend. *)
  shfl_latency : int;  (** warp shuffle *)
  smem_latency : int;  (** shared-memory load *)
  gmem_latency : int;  (** global-memory load (L2 miss path) *)
  l1_latency : int;
      (** latency of a global load served by the cache model: Pascal
          does not cache global loads in L1 by default, so cached loads
          pay the L2 round trip (~220 cycles); Volta's unified L1 serves
          them in ~28 cycles — a real architectural difference that
          shifts where fusion pays off between the two devices *)
  l1_sectors_per_block : int;
      (** modelled L1 capacity per resident block, in 32-byte sectors
          (the interpreter simulates a sectored FIFO cache per block) *)
  lmem_latency : int;  (** local-memory (spill) access *)
  (* throughputs *)
  lsu_throughput : int;
      (** cycles the load-store unit is occupied per memory transaction;
          coalesced 32-lane accesses cost 1 transaction *)
  gmem_cyc_per_txn : int;
      (** DRAM-bandwidth cost: cycles of the SM's global-memory pipe per
          32-byte transaction, derived from the device's per-SM share of
          memory bandwidth (484 GB/s over 28 SMs at 1.58 GHz for the
          1080 Ti; 900 GB/s over 80 SMs at 1.53 GHz for the V100) *)
  sfu_throughput : int;  (** cycles SFU is occupied per warp instruction *)
  gmem_max_inflight : int;
      (** max outstanding global transactions per SM (MSHR-like limit) *)
  load_use_distance : int;
      (** instructions the compiler typically schedules between a load
          and its first use (nvcc unrolls and hoists loads); the warp
          keeps issuing until a pending load's use point is reached *)
  load_slots : int;
      (** scoreboard slots: maximum loads a warp keeps outstanding *)
  (* core counts per SM, for issue-port modelling *)
  fp32_units_factor : int;
      (** extra issue cycles for fp32 ops: 1 on Pascal's 128-core SM,
          2 on Volta's 64-core SM partition *)
}

(** GTX 1080 Ti (Pascal GP102): 28 SMs, 1.58 GHz boost, 128 fp32 cores
    per SM, GDDR5X at 484 GB/s.  Simulated with 4 SMs (scale 7). *)
let gtx1080ti =
  {
    name = "1080Ti";
    sms = 4;
    sm_scale = 7;
    clock_ghz = 1.58;
    warp_size = 32;
    schedulers_per_sm = 4;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    regs_per_sm = 65536;
    smem_per_sm = 96 * 1024;
    max_threads_per_block = 1024;
    alu_latency = 6;
    dalu_latency = 16;
    sfu_latency = 20;
    shfl_latency = 15;
    smem_latency = 30;
    gmem_latency = 440;
    l1_latency = 220;
    l1_sectors_per_block = 512;
    lmem_latency = 140;
    lsu_throughput = 2;
    gmem_cyc_per_txn = 3;
    sfu_throughput = 4;
    gmem_max_inflight = 150;
    load_use_distance = 16;
    load_slots = 6;
    fp32_units_factor = 1;
  }

(** Tesla V100 (Volta GV100): 80 SMs, ~1.53 GHz boost, 64 fp32 cores per
    SM, HBM2 at 900 GB/s (lower latency, much higher bandwidth, but each
    SM owns a smaller slice of bandwidth-per-core than Pascal).
    Simulated with 8 SMs (scale 10). *)
let v100 =
  {
    name = "V100";
    sms = 8;
    sm_scale = 10;
    clock_ghz = 1.53;
    warp_size = 32;
    schedulers_per_sm = 4;
    max_threads_per_sm = 2048;
    max_blocks_per_sm = 32;
    regs_per_sm = 65536;
    smem_per_sm = 96 * 1024;
    max_threads_per_block = 1024;
    alu_latency = 4;
    dalu_latency = 8;
    sfu_latency = 16;
    shfl_latency = 12;
    smem_latency = 24;
    gmem_latency = 375;
    l1_latency = 28;
    l1_sectors_per_block = 1024;
    lmem_latency = 100;
    lsu_throughput = 2;
    gmem_cyc_per_txn = 4;
    sfu_throughput = 4;
    gmem_max_inflight = 90;
    load_use_distance = 16;
    load_slots = 6;
    fp32_units_factor = 2;
  }

let all = [ gtx1080ti; v100 ]

let by_name name =
  List.find_opt
    (fun a -> String.lowercase_ascii a.name = String.lowercase_ascii name)
    all

let max_warps_per_sm t = t.max_threads_per_sm / t.warp_size

(** SM resource limits in the form the occupancy module consumes. *)
let sm_limits t : Hfuse_core.Occupancy.sm_limits =
  {
    Hfuse_core.Occupancy.regs_per_sm = t.regs_per_sm;
    smem_per_sm = t.smem_per_sm;
    max_threads_per_sm = t.max_threads_per_sm;
    max_blocks_per_sm = t.max_blocks_per_sm;
    reg_alloc_granularity = 8;
    max_regs_per_thread = 255;
    max_threads_per_block = t.max_threads_per_block;
  }

let pp ppf t =
  Fmt.pf ppf "%s (%d SMs simulated x%d, %.2f GHz)" t.name t.sms t.sm_scale
    t.clock_ghz

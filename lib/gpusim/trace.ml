(* Per-warp dynamic instruction traces: growable parallel int arrays. *)

type t = {
  mutable codes : int array;
  mutable payloads : int array;
  mutable len : int;
}

let create ?(capacity = 1024) () =
  {
    codes = Array.make capacity 0;
    payloads = Array.make capacity 0;
    len = 0;
  }

let length t = t.len

let grow t =
  let cap = max 16 (2 * Array.length t.codes) in
  let codes = Array.make cap 0 and payloads = Array.make cap 0 in
  Array.blit t.codes 0 codes 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.codes <- codes;
  t.payloads <- payloads

let push (t : t) (i : Instr.t) : unit =
  if t.len = Array.length t.codes then grow t;
  t.codes.(t.len) <- Instr.code i;
  t.payloads.(t.len) <- Instr.payload i;
  t.len <- t.len + 1

let get (t : t) (i : int) : Instr.t =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  Instr.decode t.codes.(i) t.payloads.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (Instr.decode t.codes.(i) t.payloads.(i))
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun i -> acc := f !acc i) t;
  !acc

(* Packed variants: no [Instr.t] materialisation — replay-rate consumers
   (the timing engine, mix/cost scans) match on (code, payload) directly. *)

let iter_packed f t =
  for i = 0 to t.len - 1 do
    f t.codes.(i) t.payloads.(i)
  done

let fold_packed f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.codes.(i) t.payloads.(i)
  done;
  !acc

(** Instruction-mix histogram: count per class code. *)
let mix (t : t) : int array =
  let h = Array.make 16 0 in
  for i = 0 to t.len - 1 do
    h.(t.codes.(i)) <- h.(t.codes.(i)) + 1
  done;
  h

(** A block's worth of traces: one per warp, in warp-id order. *)
type block = t array

let block_instructions (b : block) : int =
  Array.fold_left (fun acc t -> acc + t.len) 0 b

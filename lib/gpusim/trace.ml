(* Per-warp dynamic instruction traces: growable parallel int arrays. *)

type t = {
  mutable codes : int array;
  mutable payloads : int array;
  mutable len : int;
}

let create ?(capacity = 1024) () =
  {
    codes = Array.make capacity 0;
    payloads = Array.make capacity 0;
    len = 0;
  }

let length t = t.len

let grow t =
  let cap = max 16 (2 * Array.length t.codes) in
  let codes = Array.make cap 0 and payloads = Array.make cap 0 in
  Array.blit t.codes 0 codes 0 t.len;
  Array.blit t.payloads 0 payloads 0 t.len;
  t.codes <- codes;
  t.payloads <- payloads

let push (t : t) (i : Instr.t) : unit =
  if t.len = Array.length t.codes then grow t;
  t.codes.(t.len) <- Instr.code i;
  t.payloads.(t.len) <- Instr.payload i;
  t.len <- t.len + 1

let get (t : t) (i : int) : Instr.t =
  if i < 0 || i >= t.len then invalid_arg "Trace.get";
  Instr.decode t.codes.(i) t.payloads.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (Instr.decode t.codes.(i) t.payloads.(i))
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun i -> acc := f !acc i) t;
  !acc

(* Packed variants: no [Instr.t] materialisation — replay-rate consumers
   (the timing engine, mix/cost scans) match on (code, payload) directly. *)

let iter_packed f t =
  for i = 0 to t.len - 1 do
    f t.codes.(i) t.payloads.(i)
  done

let fold_packed f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.codes.(i) t.payloads.(i)
  done;
  !acc

(** Instruction-mix histogram: count per class code. *)
let mix (t : t) : int array =
  let h = Array.make 16 0 in
  for i = 0 to t.len - 1 do
    h.(t.codes.(i)) <- h.(t.codes.(i)) + 1
  done;
  h

(** A block's worth of traces: one per warp, in warp-id order. *)
type block = t array

let block_instructions (b : block) : int =
  Array.fold_left (fun acc t -> acc + t.len) 0 b

(* ------------------------------------------------------------------ *)
(* Binary serialization of [block array] — the on-disk payload of the
   persistent trace store (lib/profiler/trace_store.ml).  The layout
   is a flat sequence of zigzag-LEB128 varints: #blocks, then per
   block #warps, then per trace its length followed by [len] codes and
   [len] payloads.  Only [len] elements are written, so capacity slack
   never leaks into the encoding and a decoded block array re-encodes
   byte-identically.  Integrity (version, checksum) is the store's
   job; [decode_blocks] still refuses any malformed input with [None]
   rather than raising or over-allocating.                              *)
(* ------------------------------------------------------------------ *)

let add_varint (b : Buffer.t) (v : int) : unit =
  (* zigzag first: payloads may be negative (OCaml ints are 63-bit,
     so the sign lives in bit 62) *)
  let u = ref ((v lsl 1) lxor (v asr 62)) in
  let continue = ref true in
  while !continue do
    let byte = !u land 0x7f in
    u := !u lsr 7;
    if !u = 0 then begin
      Buffer.add_char b (Char.chr byte);
      continue := false
    end
    else Buffer.add_char b (Char.chr (byte lor 0x80))
  done

let read_varint (s : string) (pos : int ref) : int =
  let u = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !pos >= String.length s || !shift > 62 then raise Exit;
    let byte = Char.code s.[!pos] in
    incr pos;
    u := !u lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  (!u lsr 1) lxor (- (!u land 1))

let encode_blocks (bs : block array) : string =
  let buf = Buffer.create 4096 in
  add_varint buf (Array.length bs);
  Array.iter
    (fun (b : block) ->
      add_varint buf (Array.length b);
      Array.iter
        (fun t ->
          add_varint buf t.len;
          for i = 0 to t.len - 1 do
            add_varint buf t.codes.(i)
          done;
          for i = 0 to t.len - 1 do
            add_varint buf t.payloads.(i)
          done)
        b)
    bs;
  Buffer.contents buf

let decode_blocks (s : string) : block array option =
  let pos = ref 0 in
  (* every varint is at least one byte, so any declared count larger
     than the bytes left is corrupt — checked before allocating *)
  let counted n = if n < 0 || n > String.length s - !pos then raise Exit in
  try
    let nb = read_varint s pos in
    counted nb;
    let blocks =
      Array.init nb (fun _ ->
          let nw = read_varint s pos in
          counted nw;
          Array.init nw (fun _ ->
              let len = read_varint s pos in
              counted len;
              let t =
                {
                  codes = Array.make (max 1 len) 0;
                  payloads = Array.make (max 1 len) 0;
                  len;
                }
              in
              for i = 0 to len - 1 do
                t.codes.(i) <- read_varint s pos
              done;
              for i = 0 to len - 1 do
                t.payloads.(i) <- read_varint s pos
              done;
              t))
    in
    if !pos <> String.length s then None else Some blocks
  with Exit -> None

(** Approximate resident size of a block array in bytes: two boxed int
    arrays per trace.  Counts [len], not capacity — the store copies
    traces tightly, and the bound should not depend on growth slack. *)
let blocks_bytes (bs : block array) : int =
  Array.fold_left
    (fun acc b ->
      Array.fold_left (fun acc t -> acc + (2 * 8 * t.len) + 64) acc b)
    0 bs

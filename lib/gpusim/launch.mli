(** Kernel launches on the simulator: block/warp creation, shared-memory
    layout, argument binding, and the per-block warp scheduler that
    implements barrier arrival counting.

    Each warp runs as an OCaml-effects fiber; reaching a barrier
    suspends it, and the scheduler resumes all waiters once the
    barrier's thread count has arrived — the PTX arrival-counter
    semantics fused kernels rely on.  A barrier that can never be
    satisfied (e.g. a [__syncthreads()] surviving in a fused kernel) is
    reported as {!Deadlock}. *)

exception Deadlock of string
exception Launch_error of string

(** Fuel-watchdog trip: a warp of [block] exhausted its [fuel]
    interpreter loop iterations — a runaway (or injected-hung) kernel
    terminated instead of hanging its worker.  Structured so callers
    can record the diagnostic and degrade gracefully. *)
exception Sim_timeout of { kernel : string; fuel : int; block : int }

(** Default per-warp loop-fuel budget: 3,000,000, or [HFUSE_SIM_FUEL]. *)
val default_loop_fuel : int

type config = {
  grid : int;
  block : int * int * int;
  smem_dynamic : int;  (** [extern __shared__] bytes per block *)
  trace_blocks : int;  (** record dynamic traces for the first N blocks *)
  l1_sectors : int;
      (** modelled per-block L1 capacity in 32-byte sectors; 0 disables
          the cache model *)
  exec_blocks : int option;
      (** profiling mode: functionally execute only the first N blocks
          (the timing model replays traces cyclically); [None] runs the
          whole grid *)
}

type result = {
  block_traces : Trace.block array;  (** per traced block, per warp *)
  grid : int;
  threads_per_block : int;
  warps_per_block : int;
}

(** Byte offsets of the kernel's shared declarations plus the static
    region's size.  All [extern __shared__] arrays alias the region after
    the static one, as in CUDA. *)
val shared_layout :
  Cuda.Ast.stmt list -> (string, int * Cuda.Ctype.t) Hashtbl.t * int

val static_shared_bytes : Cuda.Ast.stmt list -> int

(** Launch [fn] (normalised internally) over the grid; [args] bind the
    kernel parameters positionally.  [loop_fuel] defaults to
    {!default_loop_fuel}.  [fault] scopes chaos-injection draws
    ([sim_hang]) to an explicit plan — e.g. one server request's —
    instead of the installed process plan.
    @raise Deadlock on unsatisfiable barriers.
    @raise Launch_error on bad geometry or argument counts.
    @raise Interp.Exec_error on runtime faults in the kernel.
    @raise Sim_timeout when a warp exhausts its loop fuel.
    @raise Hfuse_fault.Fault.Injected on an injected [sim_hang] (the
    chaos harness; transient — a retry re-draws). *)
val launch :
  ?fault:Hfuse_fault.Fault.plan ->
  ?loop_fuel:int ->
  Memory.t ->
  prog:Cuda.Ast.program ->
  fn:Cuda.Ast.fn ->
  args:Value.t list ->
  config ->
  result

(** Launch from a {!Hfuse_core.Kernel_info.t} (the harness path). *)
val launch_info :
  ?exec_blocks:int ->
  ?l1_sectors:int ->
  ?fault:Hfuse_fault.Fault.plan ->
  ?loop_fuel:int ->
  Memory.t ->
  Hfuse_core.Kernel_info.t ->
  args:Value.t list ->
  trace_blocks:int ->
  result

(** Per-warp dynamic instruction traces: growable parallel int arrays
    (traces run to millions of instructions). *)

type t = {
  mutable codes : int array;
  mutable payloads : int array;
  mutable len : int;
}

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> Instr.t -> unit
val get : t -> int -> Instr.t
val iter : (Instr.t -> unit) -> t -> unit
val fold : ('a -> Instr.t -> 'a) -> 'a -> t -> 'a

(** Allocation-free variants over the packed [(code, payload)]
    encoding (see {!Instr.code}); prefer these on replay-rate paths —
    {!iter}/{!fold} build an {!Instr.t} per instruction. *)

val iter_packed : (int -> int -> unit) -> t -> unit
val fold_packed : ('a -> int -> int -> 'a) -> 'a -> t -> 'a

(** Histogram over instruction-class codes. *)
val mix : t -> int array

(** A block's traces: one per warp, in warp order. *)
type block = t array

val block_instructions : block -> int

(** Binary serialization of a [block array] — the payload format of
    the persistent trace store.  [encode_blocks] writes only the live
    [len] prefix of each trace (capacity slack never leaks), so
    [decode_blocks (encode_blocks bs)] rebuilds traces that replay and
    re-encode byte-identically.  [decode_blocks] answers [None] on any
    malformed input instead of raising or over-allocating; integrity
    (versioning, checksums) is the calling store's concern. *)

val encode_blocks : block array -> string
val decode_blocks : string -> block array option

(** Approximate in-memory footprint of a block array in bytes (live
    elements only) — the unit of the trace store's LRU bound. *)
val blocks_bytes : block array -> int

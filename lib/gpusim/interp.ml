(* Lock-step SIMT interpreter for the CUDA subset.

   Warps (32 lanes) execute statements together under an active-lane
   mask; divergent branches serialise both paths, loops iterate while any
   lane remains active, and [break]/[continue]/[return] are tracked as
   per-lane mask outcomes — the reconvergence-stack semantics of real
   SIMT hardware, expressed structurally.

   Two things happen at once during execution:
   - the *functional* result: values computed into simulated global /
     shared memory (used by the equivalence tests and by the host
     reference checks), and
   - the *dynamic trace*: one {!Instr.t} per warp instruction, with
     memory-coalescing and bank-conflict outcomes, consumed by
     {!Timing}.

   Barriers ([__syncthreads] and the partial [bar.sync id, n]) suspend
   the executing warp via an OCaml effect; the per-block scheduler in
   {!Launch} counts arrivals and resumes waiters once [n] threads have
   arrived — the PTX arrival-counter semantics the fused kernels rely
   on.  A barrier that can never be satisfied (e.g. [__syncthreads]
   surviving in a fused kernel) deadlocks, and the scheduler reports it
   as such. *)

open Cuda

exception Exec_error of string

(** Fuel watchdog trip: a warp burned through its per-launch loop fuel.
    Structured (not an [Exec_error] string) so {!Launch} can attach the
    launch context and report a {!Launch.Sim_timeout} instead of
    hanging a profiling worker on a runaway kernel. *)
exception Fuel_exhausted

let fail fmt = Fmt.kstr (fun s -> raise (Exec_error s)) fmt

(** Raised by [goto]; caught at the top level of the kernel body where
    labels live. *)
exception Goto_exn of string

(** Performed when a warp reaches a barrier: (barrier id, thread count,
    warp's live thread count). *)
type _ Effect.t +=
  | Barrier_eff : int * int * int -> unit Effect.t

type lanes = Value.t array

(** A per-block model of the SM's sectored L1 data cache: FIFO over
    32-byte sectors.  Shared by all warps of a block (created in
    {!Launch}); global loads that hit avoid the DRAM latency and
    bandwidth charge in the timing model. *)
type l1_cache = {
  l1_table : (int, unit) Hashtbl.t;  (** key: buf * 2^24 + sector *)
  l1_fifo : int Queue.t;
  l1_cap : int;  (** capacity in sectors; <= 0 disables the cache *)
}

let l1_create ~sectors =
  { l1_table = Hashtbl.create 1024; l1_fifo = Queue.create (); l1_cap = sectors }

let l1_key buf sector = (buf lsl 24) lor (sector land 0xFFFFFF)

(** [true] when the sector is already resident; inserts it otherwise. *)
let l1_probe (c : l1_cache) ~buf ~sector : bool =
  if c.l1_cap <= 0 then false
  else begin
    let key = l1_key buf sector in
    if Hashtbl.mem c.l1_table key then true
    else begin
      Hashtbl.replace c.l1_table key ();
      Queue.add key c.l1_fifo;
      if Queue.length c.l1_fifo > c.l1_cap then begin
        let victim = Queue.pop c.l1_fifo in
        Hashtbl.remove c.l1_table victim
      end;
      false
    end
  end

(** Per-warp execution context. *)
type wctx = {
  warp_size : int;
  warp_id : int;
  base_tid : int;  (** linear thread id of lane 0 within the block *)
  live : int;  (** mask of lanes backed by real threads *)
  block_idx : int;
  block_dim : int * int * int;
  grid_dim : int;
  env : (string, lanes) Hashtbl.t;
  types : (string, Ctype.t) Hashtbl.t;
  mem : Memory.t;
  shared : Bytes.t;
  shared_layout : (string, int * Ctype.t) Hashtbl.t;
      (** shared array name -> (byte offset in block smem, element type) *)
  trace : Trace.t option;
  l1 : l1_cache;
  locals : (int, Bytes.t) Hashtbl.t;
      (** per-lane local-array backing store, keyed by region id *)
  mutable local_seq : int;  (** next region id *)
  mutable loop_fuel : int;  (** guards against runaway loops *)
}

let record ctx i =
  match ctx.trace with None -> () | Some t -> Trace.push t i

let lanes_make ctx v = Array.make ctx.warp_size v
let full_of_threads n = if n >= 63 then -1 else (1 lsl n) - 1

let iter_lanes ctx mask f =
  for l = 0 to ctx.warp_size - 1 do
    if mask land (1 lsl l) <> 0 then f l
  done

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go mask 0

(* ------------------------------------------------------------------ *)
(* Coalescing / bank-conflict analysis                                  *)
(* ------------------------------------------------------------------ *)

(** 32-byte sector transactions of the active lanes' global addresses
    (distinct (buffer, sector) pairs), split into L1 misses and hits. *)
let global_transactions ctx mask (ptrs : Value.ptr array) ~probe_l1 :
    int * int =
  let segs = Hashtbl.create 16 in
  iter_lanes ctx mask (fun l ->
      let p = ptrs.(l) in
      Hashtbl.replace segs (p.Value.buf, p.Value.off lsr 5) ());
  let miss = ref 0 and hit = ref 0 in
  Hashtbl.iter
    (fun (buf, sector) () ->
      if probe_l1 && l1_probe ctx.l1 ~buf ~sector then incr hit
      else incr miss)
    segs;
  if !miss + !hit = 0 then (1, 0) else (!miss, !hit)

(** Shared-memory bank-conflict degree: 32 banks of 4-byte words; lanes
    hitting distinct words in the same bank serialise; identical
    addresses broadcast. *)
let bank_conflict_degree ctx mask (ptrs : Value.ptr array) : int =
  let per_bank = Array.make 32 0 in
  let seen = Hashtbl.create 16 in
  iter_lanes ctx mask (fun l ->
      let word = ptrs.(l).Value.off lsr 2 in
      if not (Hashtbl.mem seen word) then begin
        Hashtbl.replace seen word ();
        let bank = word land 31 in
        per_bank.(bank) <- per_bank.(bank) + 1
      end);
  Array.fold_left max 1 per_bank

(** Memory space of the first active lane's pointer (Global if none). *)
let active_space ctx mask (ptrs : Value.ptr array) : Value.space =
  let r = ref Value.Global in
  (try
     iter_lanes ctx mask (fun l ->
         r := ptrs.(l).Value.space;
         raise Exit)
   with Exit -> ());
  !r

(** Serialisation degree of atomics: the maximum number of active lanes
    addressing the same location. *)
let atomic_conflict_degree ctx mask (ptrs : Value.ptr array) : int =
  let counts = Hashtbl.create 16 in
  iter_lanes ctx mask (fun l ->
      let key = (ptrs.(l).Value.buf, ptrs.(l).Value.off) in
      Hashtbl.replace counts key
        (1 + Option.value (Hashtbl.find_opt counts key) ~default:0));
  Hashtbl.fold (fun _ n acc -> max n acc) counts 1

(* ------------------------------------------------------------------ *)
(* Memory access                                                        *)
(* ------------------------------------------------------------------ *)

let resolve_bytes ctx (p : Value.ptr) : Bytes.t =
  match p.Value.space with
  | Value.Global -> Memory.buffer ctx.mem p.Value.buf
  | Value.Shared -> ctx.shared
  | Value.Local_mem -> (
      match Hashtbl.find_opt ctx.locals p.Value.buf with
      | Some b -> b
      | None -> fail "dangling local-memory pointer (region %d)" p.Value.buf)

let load_ptr ctx (p : Value.ptr) : Value.t =
  Memory.load_bytes (resolve_bytes ctx p) p.Value.off p.Value.elem

let store_ptr ctx (p : Value.ptr) (v : Value.t) : unit =
  Memory.store_bytes (resolve_bytes ctx p) p.Value.off p.Value.elem v

(** Record the trace event for a [load] ([is_load = true]) or store of
    the active lanes' pointers. *)
let record_access ctx mask (ptrs : Value.ptr array) ~is_load : unit =
  if ctx.trace <> None then begin
    (* find a representative active lane for the space *)
    let space = ref None in
    (try
       iter_lanes ctx mask (fun l ->
           space := Some ptrs.(l).Value.space;
           raise Exit)
     with Exit -> ());
    match !space with
    | None -> ()
    | Some Value.Global ->
        if is_load then begin
          let miss, hit = global_transactions ctx mask ptrs ~probe_l1:true in
          record ctx (Instr.Ld_global (miss, hit))
        end
        else begin
          (* write-through, no-allocate: stores always pay DRAM bandwidth
             but do invalidate nothing and allocate nothing *)
          let miss, hit = global_transactions ctx mask ptrs ~probe_l1:false in
          record ctx (Instr.St_global (miss + hit))
        end
    | Some Value.Shared ->
        let n = bank_conflict_degree ctx mask ptrs in
        record ctx (if is_load then Instr.Ld_shared n else Instr.St_shared n)
    | Some Value.Local_mem ->
        (* per-thread arrays model the miners' register-resident state
           (the real kernels fully unroll); charge a register move, not
           a memory access *)
        record ctx Instr.Alu
  end

(* ------------------------------------------------------------------ *)
(* Builtins                                                             *)
(* ------------------------------------------------------------------ *)

let eval_builtin ctx (b : Ast.builtin) : lanes =
  let bx, by, _bz = ctx.block_dim in
  let per_lane f =
    Array.init ctx.warp_size (fun l ->
        Value.UInt (Int32.of_int (f (ctx.base_tid + l))))
  in
  match b with
  | Ast.Thread_idx Ast.X -> per_lane (fun tid -> tid mod bx)
  | Ast.Thread_idx Ast.Y -> per_lane (fun tid -> tid / bx mod by)
  | Ast.Thread_idx Ast.Z -> per_lane (fun tid -> tid / (bx * by))
  | Ast.Block_idx Ast.X ->
      lanes_make ctx (Value.UInt (Int32.of_int ctx.block_idx))
  | Ast.Block_idx (Ast.Y | Ast.Z) -> lanes_make ctx (Value.UInt 0l)
  | Ast.Block_dim Ast.X -> lanes_make ctx (Value.UInt (Int32.of_int bx))
  | Ast.Block_dim Ast.Y -> lanes_make ctx (Value.UInt (Int32.of_int by))
  | Ast.Block_dim Ast.Z ->
      let _, _, bz = ctx.block_dim in
      lanes_make ctx (Value.UInt (Int32.of_int bz))
  | Ast.Grid_dim Ast.X -> lanes_make ctx (Value.UInt (Int32.of_int ctx.grid_dim))
  | Ast.Grid_dim (Ast.Y | Ast.Z) -> lanes_make ctx (Value.UInt 1l)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                                *)
(* ------------------------------------------------------------------ *)

(** Division has no hardware unit on these GPUs: integer div/mod lowers
    to a ~12-instruction reciprocal sequence, fp32 division to an SFU
    reciprocal plus a short Newton refinement.  Recorded accordingly so
    index-arithmetic-heavy kernels show their real issue pressure. *)
let record_div ctx mask (out : Value.t array) : unit =
  if ctx.trace <> None then begin
    let v = ref (Value.Int 0l) in
    (try
       iter_lanes ctx mask (fun l ->
           v := out.(l);
           raise Exit)
     with Exit -> ());
    match !v with
    | Value.Float _ ->
        record ctx Instr.Sfu;
        for _ = 1 to 4 do record ctx Instr.Falu done
    | Value.Double _ -> for _ = 1 to 8 do record ctx Instr.Dalu done
    | Value.Long _ | Value.ULong _ ->
        for _ = 1 to 20 do record ctx Instr.Alu done
    | _ -> for _ = 1 to 12 do record ctx Instr.Alu done
  end

(** Record the issue cost of an arithmetic result: fp32/fp64 go to their
    pipes; 64-bit integer operations lower to two 32-bit instructions on
    both modelled architectures (as in real SASS), everything else is
    one ALU op. *)
let record_arith ctx mask (out : Value.t array) : unit =
  if ctx.trace <> None then begin
    let v = ref (Value.Int 0l) in
    (try
       iter_lanes ctx mask (fun l ->
           v := out.(l);
           raise Exit)
     with Exit -> ());
    match !v with
    | Value.Float _ -> record ctx Instr.Falu
    | Value.Double _ -> record ctx Instr.Dalu
    | Value.Long _ | Value.ULong _ ->
        record ctx Instr.Alu;
        record ctx Instr.Alu
    | _ -> record ctx Instr.Alu
  end

let truth_mask ctx mask (vs : lanes) : int =
  let m = ref 0 in
  iter_lanes ctx mask (fun l -> if Value.truthy vs.(l) then m := !m lor (1 lsl l));
  !m

let lookup_var ctx x : lanes =
  match Hashtbl.find_opt ctx.env x with
  | Some v -> v
  | None -> (
      (* shared arrays live in the layout, not the env *)
      match Hashtbl.find_opt ctx.shared_layout x with
      | Some (off, elem) ->
          lanes_make ctx
            (Value.Ptr { Value.space = Value.Shared; buf = 0; off; elem })
      | None -> fail "use of unbound variable %s" x)

let declared_type ctx x : Ctype.t option = Hashtbl.find_opt ctx.types x

(** An lvalue, resolved per-lane. *)
type lval =
  | Lvar of string
  | Lmem of Value.ptr array  (** per-lane pointers (valid at active lanes) *)

let rec eval ctx mask (e : Ast.expr) : lanes =
  match e with
  | Ast.Int_lit (v, ty) ->
      lanes_make ctx
        (match ty with
        | Ctype.Int -> Value.Int (Int64.to_int32 v)
        | Ctype.UInt -> Value.UInt (Int64.to_int32 v)
        | Ctype.Long -> Value.Long v
        | Ctype.ULong -> Value.ULong v
        | _ -> Value.Int (Int64.to_int32 v))
  | Ast.Float_lit (v, ty) ->
      lanes_make ctx
        (if ty = Ctype.Float then Value.Float (Value.f32 v)
         else Value.Double v)
  | Ast.Bool_lit b -> lanes_make ctx (Value.Bool b)
  | Ast.Var x -> lookup_var ctx x
  | Ast.Builtin b -> eval_builtin ctx b
  | Ast.Unop (op, a) ->
      let va = eval ctx mask a in
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> out.(l) <- Value.unop op va.(l));
      record_arith ctx mask out;
      out
  | Ast.Binop (Ast.Land, a, b) ->
      let va = eval ctx mask a in
      let need_b = truth_mask ctx mask va in
      let vb =
        if need_b = 0 then lanes_make ctx (Value.Bool false)
        else eval ctx need_b b
      in
      let out = lanes_make ctx (Value.Bool false) in
      iter_lanes ctx mask (fun l ->
          out.(l) <-
            Value.Bool
              (Value.truthy va.(l)
              && mask land need_b land (1 lsl l) <> 0
              && Value.truthy vb.(l)));
      record ctx Instr.Alu;
      out
  | Ast.Binop (Ast.Lor, a, b) ->
      let va = eval ctx mask a in
      let a_true = truth_mask ctx mask va in
      let need_b = mask land lnot a_true in
      let vb =
        if need_b = 0 then lanes_make ctx (Value.Bool false)
        else eval ctx need_b b
      in
      let out = lanes_make ctx (Value.Bool false) in
      iter_lanes ctx mask (fun l ->
          out.(l) <-
            Value.Bool
              (Value.truthy va.(l)
              || (need_b land (1 lsl l) <> 0 && Value.truthy vb.(l))));
      record ctx Instr.Alu;
      out
  | Ast.Binop (op, a, b) ->
      let va = eval ctx mask a in
      let vb = eval ctx mask b in
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> out.(l) <- Value.binop op va.(l) vb.(l));
      (match op with
      | Ast.Div | Ast.Mod -> record_div ctx mask out
      | _ -> record_arith ctx mask out);
      out
  | Ast.Assign (lhs, rhs) ->
      let v = eval ctx mask rhs in
      assign ctx mask lhs v
  | Ast.Op_assign (op, lhs, rhs) ->
      let lv = eval_lval ctx mask lhs in
      let cur = load_lval ctx mask lv in
      let vb = eval ctx mask rhs in
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> out.(l) <- Value.binop op cur.(l) vb.(l));
      (match op with
      | Ast.Div | Ast.Mod -> record_div ctx mask out
      | _ -> record_arith ctx mask out);
      store_lval ctx mask lv out
  | Ast.Incdec { pre; inc; lval } ->
      let lv = eval_lval ctx mask lval in
      let cur = load_lval ctx mask lv in
      let one = Ast.Int_lit (1L, Ctype.Int) in
      let vb = eval ctx mask one in
      let op = if inc then Ast.Add else Ast.Sub in
      let next = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> next.(l) <- Value.binop op cur.(l) vb.(l));
      record ctx Instr.Alu;
      let stored = store_lval ctx mask lv next in
      if pre then stored else cur
  | Ast.Ternary (c, a, b) ->
      let vc = eval ctx mask c in
      let mt = truth_mask ctx mask vc in
      let mf = mask land lnot mt in
      let va = if mt <> 0 then eval ctx mt a else lanes_make ctx (Value.Int 0l) in
      let vb = if mf <> 0 then eval ctx mf b else lanes_make ctx (Value.Int 0l) in
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l ->
          out.(l) <- (if mt land (1 lsl l) <> 0 then va.(l) else vb.(l)));
      record ctx Instr.Alu;
      out
  | Ast.Call (f, args) -> eval_call ctx mask f args
  | Ast.Index _ | Ast.Deref _ -> (
      let lv = eval_lval ctx mask e in
      match lv with
      | Lmem ptrs ->
          let out = lanes_make ctx (Value.Int 0l) in
          iter_lanes ctx mask (fun l -> out.(l) <- load_ptr ctx ptrs.(l));
          record_access ctx mask ptrs ~is_load:true;
          out
      | Lvar _ -> assert false)
  | Ast.Addr_of lhs -> (
      match eval_lval ctx mask lhs with
      | Lmem ptrs ->
          Array.map (fun p -> Value.Ptr p) ptrs
      | Lvar x -> fail "cannot take the address of register variable %s" x)
  | Ast.Cast (ty, a) ->
      let va = eval ctx mask a in
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> out.(l) <- Value.convert ty va.(l));
      (* pointer reinterpretation is free; arithmetic conversions cost *)
      (match ty with
      | Ctype.Ptr _ -> ()
      | _ -> record ctx Instr.Alu);
      out

and eval_lval ctx mask (e : Ast.expr) : lval =
  match e with
  | Ast.Var x -> (
      match Hashtbl.find_opt ctx.shared_layout x with
      | Some (off, elem) ->
          Lmem
            (lanes_make ctx
               { Value.space = Value.Shared; buf = 0; off; elem })
      | None -> Lvar x)
  | Ast.Index (base, idx) -> (
      let vb = eval ctx mask base in
      let vi = eval ctx mask idx in
      record ctx Instr.Alu (* address computation *);
      let ptrs =
        Array.make ctx.warp_size
          { Value.space = Value.Shared; buf = 0; off = 0; elem = Ctype.Int }
      in
      iter_lanes ctx mask (fun l ->
          match vb.(l) with
          | Value.Ptr p ->
              ptrs.(l) <-
                {
                  p with
                  Value.off =
                    p.Value.off
                    + (Value.to_int vi.(l) * Ctype.sizeof p.Value.elem);
                }
          | v ->
              fail "subscript of non-pointer value %a (in %s)" Value.pp v
                (Pretty.expr_to_string e));
      Lmem ptrs)
  | Ast.Deref e -> (
      let vb = eval ctx mask e in
      let ptrs =
        Array.make ctx.warp_size
          { Value.space = Value.Shared; buf = 0; off = 0; elem = Ctype.Int }
      in
      iter_lanes ctx mask (fun l ->
          match vb.(l) with
          | Value.Ptr p -> ptrs.(l) <- p
          | v -> fail "dereference of non-pointer value %a" Value.pp v);
      Lmem ptrs)
  | e -> fail "not an lvalue: %s" (Pretty.expr_to_string e)

and load_lval ctx mask (lv : lval) : lanes =
  match lv with
  | Lvar x -> lookup_var ctx x
  | Lmem ptrs ->
      let out = lanes_make ctx (Value.Int 0l) in
      iter_lanes ctx mask (fun l -> out.(l) <- load_ptr ctx ptrs.(l));
      record_access ctx mask ptrs ~is_load:true;
      out

(** Store [v] through [lv] at the active lanes; returns the stored
    (converted) lanes. *)
and store_lval ctx mask (lv : lval) (v : lanes) : lanes =
  match lv with
  | Lvar x ->
      let cur =
        match Hashtbl.find_opt ctx.env x with
        | Some a -> a
        | None -> fail "assignment to unbound variable %s" x
      in
      let conv =
        match declared_type ctx x with
        | Some ty when Ctype.is_arith ty || ty = Ctype.Bool ->
            fun v -> Value.convert ty v
        | _ -> fun v -> v
      in
      iter_lanes ctx mask (fun l -> cur.(l) <- conv v.(l));
      cur
  | Lmem ptrs ->
      iter_lanes ctx mask (fun l -> store_ptr ctx ptrs.(l) v.(l));
      record_access ctx mask ptrs ~is_load:false;
      v

and assign ctx mask lhs (v : lanes) : lanes =
  let lv = eval_lval ctx mask lhs in
  store_lval ctx mask lv v

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                           *)
(* ------------------------------------------------------------------ *)

and eval_call ctx mask (f : string) (args : Ast.expr list) : lanes =
  let unop_float ff latcls =
    match args with
    | [ a ] ->
        let va = eval ctx mask a in
        let out = lanes_make ctx (Value.Float 0.) in
        iter_lanes ctx mask (fun l ->
            out.(l) <- Value.Float (Value.f32 (ff (Value.to_float va.(l)))));
        record ctx latcls;
        out
    | _ -> fail "%s expects 1 argument" f
  in
  match f with
  | "min" | "max" -> (
      match args with
      | [ a; b ] ->
          let va = eval ctx mask a and vb = eval ctx mask b in
          let out = lanes_make ctx (Value.Int 0l) in
          let op = if f = "min" then Ast.Lt else Ast.Gt in
          iter_lanes ctx mask (fun l ->
              out.(l) <-
                (if Value.truthy (Value.binop op va.(l) vb.(l)) then va.(l)
                 else vb.(l)));
          record_arith ctx mask out;
          out
      | _ -> fail "%s expects 2 arguments" f)
  | "fminf" | "fmaxf" -> (
      match args with
      | [ a; b ] ->
          let va = eval ctx mask a and vb = eval ctx mask b in
          let out = lanes_make ctx (Value.Float 0.) in
          iter_lanes ctx mask (fun l ->
              let x = Value.to_float va.(l) and y = Value.to_float vb.(l) in
              out.(l) <-
                Value.Float (Value.f32 (if f = "fminf" then Float.min x y
                                        else Float.max x y)));
          record ctx Instr.Falu;
          out
      | _ -> fail "%s expects 2 arguments" f)
  | "fabsf" -> unop_float Float.abs Instr.Falu
  | "sqrtf" -> unop_float sqrt Instr.Sfu
  | "rsqrtf" -> unop_float (fun x -> 1.0 /. sqrt x) Instr.Sfu
  | "expf" -> unop_float exp Instr.Sfu
  | "logf" -> unop_float log Instr.Sfu
  | "floorf" -> unop_float Float.floor Instr.Falu
  | "ceilf" -> unop_float Float.ceil Instr.Falu
  | "roundf" -> unop_float Float.round Instr.Falu
  | "getMSB" -> (
      match args with
      | [ a ] ->
          let va = eval ctx mask a in
          let out = lanes_make ctx (Value.Int 0l) in
          iter_lanes ctx mask (fun l ->
              let v = Value.to_int va.(l) in
              if v <= 0 then fail "getMSB of non-positive value %d" v;
              let rec msb v acc = if v <= 1 then acc else msb (v lsr 1) (acc + 1) in
              out.(l) <- Value.Int (Int32.of_int (msb v 0)));
          record ctx Instr.Alu;
          out
      | _ -> fail "getMSB expects 1 argument")
  | "rotr32" | "rotl32" -> (
      match args with
      | [ a; b ] ->
          let va = eval ctx mask a and vb = eval ctx mask b in
          let out = lanes_make ctx (Value.UInt 0l) in
          iter_lanes ctx mask (fun l ->
              let x = Int64.to_int32 (Value.to_i64 va.(l)) in
              let n = Value.to_int vb.(l) land 31 in
              let n = if f = "rotl32" then (32 - n) land 31 else n in
              let r =
                Int32.logor
                  (Int32.shift_right_logical x n)
                  (Int32.shift_left x ((32 - n) land 31))
              in
              out.(l) <- Value.UInt r);
          record ctx Instr.Alu;
          out
      | _ -> fail "%s expects 2 arguments" f)
  | "rotr64" | "rotl64" -> (
      match args with
      | [ a; b ] ->
          let va = eval ctx mask a and vb = eval ctx mask b in
          let out = lanes_make ctx (Value.ULong 0L) in
          iter_lanes ctx mask (fun l ->
              let x = Value.to_i64 va.(l) in
              let n = Value.to_int vb.(l) land 63 in
              let n = if f = "rotl64" then (64 - n) land 63 else n in
              let r =
                Int64.logor
                  (Int64.shift_right_logical x n)
                  (Int64.shift_left x ((64 - n) land 63))
              in
              out.(l) <- Value.ULong r);
          record ctx Instr.Alu;
          out
      | _ -> fail "%s expects 2 arguments" f)
  | "WARP_SHFL_XOR" | "WARP_SHFL_DOWN" | "__shfl_xor_sync" | "__shfl_down_sync"
  | "__shfl_sync" -> (
      (* normalise arguments: the __sync variants carry a leading member
         mask which we drop *)
      let args =
        match f with
        | "__shfl_xor_sync" | "__shfl_down_sync" | "__shfl_sync" ->
            List.tl args
        | _ -> args
      in
      match args with
      | v :: delta :: _rest ->
          let vv = eval ctx mask v in
          let vd = eval ctx mask delta in
          let out = lanes_make ctx (Value.Int 0l) in
          iter_lanes ctx mask (fun l ->
              let d = Value.to_int vd.(l) in
              let src =
                match f with
                | "WARP_SHFL_XOR" | "__shfl_xor_sync" -> l lxor d
                | "WARP_SHFL_DOWN" | "__shfl_down_sync" -> l + d
                | _ -> d (* __shfl_sync: absolute lane *)
              in
              let src = if src < 0 || src >= ctx.warp_size then l else src in
              out.(l) <- vv.(src));
          record ctx Instr.Shfl;
          out
      | _ -> fail "%s expects at least 2 value arguments" f)
  | "atomicAdd" | "atomicMax" | "atomicMin" | "atomicExch" -> (
      match args with
      | [ addr; v ] ->
          let lv = eval_lval ctx mask (Ast.Deref addr) in
          let ptrs =
            match lv with
            | Lmem p -> p
            | Lvar x -> fail "atomic on register variable %s" x
          in
          let vv = eval ctx mask v in
          let out = lanes_make ctx (Value.Int 0l) in
          (* lanes apply in lane order — a legal serialisation *)
          iter_lanes ctx mask (fun l ->
              let p = ptrs.(l) in
              let old = load_ptr ctx p in
              out.(l) <- old;
              let neu =
                match f with
                | "atomicAdd" -> Value.binop Ast.Add old vv.(l)
                | "atomicMax" ->
                    if Value.truthy (Value.binop Ast.Gt vv.(l) old) then vv.(l)
                    else old
                | "atomicMin" ->
                    if Value.truthy (Value.binop Ast.Lt vv.(l) old) then vv.(l)
                    else old
                | _ -> vv.(l)
              in
              store_ptr ctx p neu);
          let degree = atomic_conflict_degree ctx mask ptrs in
          let space = active_space ctx mask ptrs in
          (match space with
          | Value.Shared -> record ctx (Instr.Atom_shared degree)
          | _ -> record ctx (Instr.Atom_global degree));
          out
      | _ -> fail "%s expects 2 arguments" f)
  | "atomicCAS" -> (
      match args with
      | [ addr; cmp; v ] ->
          let lv = eval_lval ctx mask (Ast.Deref addr) in
          let ptrs =
            match lv with
            | Lmem p -> p
            | Lvar x -> fail "atomic on register variable %s" x
          in
          let vc = eval ctx mask cmp in
          let vv = eval ctx mask v in
          let out = lanes_make ctx (Value.Int 0l) in
          iter_lanes ctx mask (fun l ->
              let p = ptrs.(l) in
              let old = load_ptr ctx p in
              out.(l) <- old;
              if Value.truthy (Value.binop Ast.Eq old vc.(l)) then
                store_ptr ctx p vv.(l));
          record ctx (Instr.Atom_global (atomic_conflict_degree ctx mask ptrs));
          out
      | _ -> fail "atomicCAS expects 3 arguments")
  | "__ballot_sync" -> (
      match args with
      | [ _m; pred ] ->
          let vp = eval ctx mask pred in
          let bits = truth_mask ctx mask vp in
          record ctx Instr.Shfl;
          lanes_make ctx (Value.UInt (Int32.of_int bits))
      | _ -> fail "__ballot_sync expects 2 arguments")
  | "__syncwarp" ->
      record ctx Instr.Alu;
      lanes_make ctx (Value.Int 0l)
  | "__threadfence" | "__threadfence_block" ->
      record ctx Instr.Alu;
      lanes_make ctx (Value.Int 0l)
  | f -> fail "call to unknown or uninlined function %s" f

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

type outcome = { fall : int; brk : int; cont : int; ret : int }

let pure_fall mask = { fall = mask; brk = 0; cont = 0; ret = 0 }

let burn_fuel ctx =
  ctx.loop_fuel <- ctx.loop_fuel - 1;
  if ctx.loop_fuel <= 0 then raise Fuel_exhausted

let exec_decl ctx mask (d : Ast.decl) : unit =
  match d.d_storage with
  | Ast.Shared | Ast.Shared_extern ->
      (* layout assigned at block setup; nothing to execute *)
      ()
  | Ast.Local -> (
      Hashtbl.replace ctx.types d.d_name d.d_type;
      (match d.d_type with
      | Ctype.Array (el, Some n) ->
          (* per-lane backing store; each lane gets its own region *)
          if not (Hashtbl.mem ctx.env d.d_name) then begin
            let bytes = n * Ctype.sizeof el in
            let ptrs =
              Array.init ctx.warp_size (fun _ ->
                  let id = ctx.local_seq in
                  ctx.local_seq <- ctx.local_seq + 1;
                  Hashtbl.replace ctx.locals id (Bytes.make bytes '\000');
                  Value.Ptr
                    { Value.space = Value.Local_mem; buf = id; off = 0; elem = el })
            in
            Hashtbl.replace ctx.env d.d_name ptrs
          end
      | Ctype.Array (_, None) ->
          fail "local array %s must have a size" d.d_name
      | _ -> ());
      (if (match d.d_type with Ctype.Array _ -> false | _ -> true)
          && not (Hashtbl.mem ctx.env d.d_name) then
         let init_val =
           match d.d_type with
           | Ctype.Ptr elem ->
               (* an uninitialised pointer; poison until assigned *)
               Value.Ptr { Value.space = Value.Shared; buf = 0; off = 0; elem }
           | t -> ( try Value.zero t with _ -> Value.Int 0l)
         in
         Hashtbl.replace ctx.env d.d_name
           (Array.make ctx.warp_size init_val));
      match d.d_init with
      | None -> ()
      | Some e ->
          let v = eval ctx mask e in
          ignore (store_lval ctx mask (Lvar d.d_name) v))

let rec exec_stmts ctx mask (stmts : Ast.stmt list) : outcome =
  let alive = ref mask in
  let brk = ref 0 and cont = ref 0 and ret = ref 0 in
  (try
     List.iter
       (fun s ->
         if !alive = 0 then raise Exit;
         let out = exec_stmt ctx !alive s in
         alive := out.fall;
         brk := !brk lor out.brk;
         cont := !cont lor out.cont;
         ret := !ret lor out.ret)
       stmts
   with Exit -> ());
  { fall = !alive; brk = !brk; cont = !cont; ret = !ret }

and exec_stmt ctx mask (s : Ast.stmt) : outcome =
  match s.s with
  | Ast.Nop | Ast.Label _ -> pure_fall mask
  | Ast.Decl d ->
      exec_decl ctx mask d;
      pure_fall mask
  | Ast.Expr e ->
      ignore (eval ctx mask e);
      pure_fall mask
  | Ast.If (c, t, e) ->
      let vc = eval ctx mask c in
      record ctx Instr.Branch;
      let mt = truth_mask ctx mask vc in
      let mf = mask land lnot mt in
      let out_t =
        if mt <> 0 then exec_stmts ctx mt t
        else { fall = 0; brk = 0; cont = 0; ret = 0 }
      in
      let out_e =
        if mf <> 0 then exec_stmts ctx mf e
        else { fall = 0; brk = 0; cont = 0; ret = 0 }
      in
      {
        fall = out_t.fall lor out_e.fall;
        brk = out_t.brk lor out_e.brk;
        cont = out_t.cont lor out_e.cont;
        ret = out_t.ret lor out_e.ret;
      }
  | Ast.While (c, body) -> exec_loop ctx mask ~init:None ~cond:(Some c) ~step:None body
  | Ast.Do_while (body, c) ->
      (* execute body once, then behave as a while *)
      let out = exec_stmts ctx mask body in
      let ret = out.ret and exited = out.brk in
      let alive = out.fall lor out.cont in
      let rest =
        if alive = 0 then { fall = 0; brk = 0; cont = 0; ret = 0 }
        else exec_loop ctx alive ~init:None ~cond:(Some c) ~step:None body
      in
      {
        fall = exited lor rest.fall;
        brk = 0;
        cont = 0;
        ret = ret lor rest.ret;
      }
  | Ast.For (init, cond, step, body) ->
      (match init with
      | None -> ()
      | Some (Ast.For_expr e) -> ignore (eval ctx mask e)
      | Some (Ast.For_decl ds) -> List.iter (exec_decl ctx mask) ds);
      exec_loop ctx mask ~init:None ~cond ~step body
  | Ast.Return None ->
      { fall = 0; brk = 0; cont = 0; ret = mask }
  | Ast.Return (Some e) ->
      ignore (eval ctx mask e);
      { fall = 0; brk = 0; cont = 0; ret = mask }
  | Ast.Break -> { fall = 0; brk = mask; cont = 0; ret = 0 }
  | Ast.Continue -> { fall = 0; brk = 0; cont = mask; ret = 0 }
  | Ast.Sync ->
      let bx, by, bz = ctx.block_dim in
      sync ctx mask ~id:0 ~count:(bx * by * bz);
      pure_fall mask
  | Ast.Bar_sync (id, count) ->
      sync ctx mask ~id ~count;
      pure_fall mask
  | Ast.Goto l ->
      if mask <> ctx.live then
        fail
          "divergent goto %s (mask %x, live %x): HFuse emits only \
           warp-uniform gotos"
          l mask ctx.live;
      raise (Goto_exn l)
  | Ast.Block b -> exec_stmts ctx mask b

and sync ctx mask ~id ~count =
  if mask <> ctx.live then
    fail "barrier (id %d) reached with divergent mask %x (live %x)" id mask
      ctx.live;
  record ctx (Instr.Bar (id, count));
  Effect.perform (Barrier_eff (id, count, popcount ctx.live))

and exec_loop ctx mask ~init:_ ~cond ~step body : outcome =
  let alive = ref mask in
  let exited = ref 0 and ret = ref 0 in
  (try
     while !alive <> 0 do
       burn_fuel ctx;
       (* condition *)
       let active =
         match cond with
         | None -> !alive
         | Some c ->
             let vc = eval ctx !alive c in
             record ctx Instr.Branch;
             let t = truth_mask ctx !alive vc in
             exited := !exited lor (!alive land lnot t);
             t
       in
       if active = 0 then raise Exit;
       let out = exec_stmts ctx active body in
       ret := !ret lor out.ret;
       exited := !exited lor out.brk;
       let continuing = out.fall lor out.cont in
       (match step with
       | Some e when continuing <> 0 -> ignore (eval ctx continuing e)
       | _ -> ());
       alive := continuing
     done
   with Exit -> ());
  { fall = !exited; brk = 0; cont = 0; ret = !ret }

(* ------------------------------------------------------------------ *)
(* Top level: kernel body with goto/label resolution                    *)
(* ------------------------------------------------------------------ *)

(** Execute a kernel body for one warp.  Labels are resolved at the top
    statement level (where HFuse places them). *)
let run_body ctx (stmts : Ast.stmt list) : unit =
  let rec go stmts =
    match exec_stmts ctx ctx.live stmts with
    | _ -> ()
    | exception Goto_exn l ->
        let rec find = function
          | [] -> fail "goto to label %s not found at kernel top level" l
          | { Ast.s = Ast.Label l'; _ } :: rest when String.equal l l' -> rest
          | _ :: rest -> find rest
        in
        go (find stmts)
  in
  go stmts

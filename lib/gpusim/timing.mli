(** Cycle-level warp-scheduler replay — event-driven engine.

    Replays {!Interp} traces through a model of the SM
    microarchitecture and reports the nvprof-style metrics of the
    paper's Section IV-A.  Models per SM: 4 schedulers issuing one
    instruction per cycle from their warp pools (greedy round-robin);
    in-order warps with a multi-slot load scoreboard (loads park until
    a compiler-scheduled use point, so several pipeline per warp);
    per-class dependency latencies; structural pipes (DRAM bandwidth,
    MSHR in-flight cap, separate shared-memory and global LD/ST units,
    SFU, double-width fp32 issue on Volta); partial-barrier arrival
    counters; block residency limited exactly as
    {!Hfuse_core.Occupancy} computes; and deterministic spill-traffic
    injection for register caps.

    The engine steps per-SM and event-driven: an SM that provably
    cannot issue sleeps until its next wake (warp latency expiry,
    structural pipe release, or memory completion) while its constant
    stall/occupancy contribution is charged arithmetically.  Reports
    are bit-identical to the reference {!Timing_legacy} engine — the
    differential test suite enforces this field-for-field. *)

exception Timing_error of string

(** How queued blocks reach SMs.  [Fifo] models the real Grid Management
    Unit for equal-priority streams: global submission order with
    head-of-line blocking, so concurrent kernels overlap only at the
    first one's tail.  [Leftover] is an idealised backfilling
    distributor, exposed for the ablation benches. *)
type dispatch_policy = Fifo | Leftover

(** One kernel launch submitted to the simulated GPU. *)
type launch_spec = {
  label : string;
  block_traces : Trace.block array;
      (** representative per-block traces; block [b] replays trace
          [b mod length] *)
  grid : int;
  threads_per_block : int;
  regs : int;  (** per-thread registers after any cap *)
  spill : int;  (** registers spilled by the cap (0 = none) *)
  smem : int;  (** shared bytes per block (static + dynamic) *)
  stream : int;
}

type kernel_metrics = {
  k_label : string;
  k_elapsed_cycles : int;
  k_issued : int;
  k_blocks_per_sm : int;
}

type report = {
  elapsed_cycles : int;
  time_ms : float;
  issued_slots : int;
  total_slots : int;
  issue_slot_util : float;  (** percent *)
  mem_stall_slots : int;
  sync_stall_slots : int;
  other_stall_slots : int;
  idle_slots : int;
  mem_stall_pct : float;
      (** percent of stall slots waiting on global/local memory (the
          nvprof "memory dependency" definition) *)
  occupancy : float;  (** percent achieved *)
  kernels : kernel_metrics list;
}

(** Engine self-profiling: how much work the event-driven stepping
    avoided relative to a step-every-SM-every-cycle loop, and how much
    the hot path allocates. *)
type engine_stats = {
  cycles_stepped : int;
      (** cycles the main loop actually visited (at least one SM live) *)
  cycles_skipped : int;
      (** globally-dead cycles charged arithmetically by skip-ahead *)
  sm_steps : int;  (** per-SM step invocations (pools were scanned) *)
  sm_steps_skipped : int;
      (** SM-cycles on visited cycles served from a sleeping SM's
          cached stall/residency contribution *)
  scan_skip_hits : int;
      (** scheduler steps answered by the scan-skip window cache *)
  warp_allocs : int;  (** warp records freshly allocated *)
  warp_reuses : int;  (** warp records recycled from the free list *)
}

val empty_stats : engine_stats
val add_stats : engine_stats -> engine_stats -> engine_stats
val pp_engine_stats : Format.formatter -> engine_stats -> unit

(** Instructions between injected local-memory round trips for a
    register cap spilling [spill] registers ([max_int] when nothing
    spills).  Exposed so analytical models can mirror the engine's
    spill-traffic rate instead of hard-coding its calibration. *)
val spill_interval : int -> int

(** Run the launches to completion.  Deterministic.
    @raise Timing_error when a kernel cannot fit one block on an SM,
    a barrier can never be satisfied, or the cycle budget is exceeded. *)
val run : ?policy:dispatch_policy -> Arch.t -> launch_spec list -> report

(** Like {!run}, also returning this run's {!engine_stats}. *)
val run_with_stats :
  ?policy:dispatch_policy -> Arch.t -> launch_spec list -> report * engine_stats

(** Process-wide totals over every {!run} since start (or the last
    {!reset_cumulative_stats}).  Accumulated atomically, so replays
    fanned over {!Hfuse_parallel.Pool} worker domains are counted. *)
val cumulative_stats : unit -> engine_stats

val reset_cumulative_stats : unit -> unit

(** Fold [s] into the process-wide counters exactly as {!run} does with
    its own stats.  For callers that satisfy a replay from a cache but
    still want the producing replay's engine work accounted (the
    profiler's report cache stores each report's stats alongside it). *)
val accumulate_stats : engine_stats -> unit

(* Reference cycle-level replay engine, kept verbatim for differential
   validation of {!Timing}.

   This is the pre-event-driven engine: one global cycle loop that steps
   every SM every cycle (with a scheduler-local scan-skip cache and a
   globally-dead-cycle skip-ahead).  {!Timing} reproduces its report
   bit-for-bit — every counter, every metric — while stepping each SM
   only on cycles where its state can change; the qcheck differential
   suite and the bench harness assert that equivalence over the whole
   corpus and over randomized launch specs.  Do not modify this module
   except to mirror a deliberate, report-changing model fix made in
   {!Timing}.

   Replays the dynamic traces recorded by {!Interp} through a model of
   the SM microarchitecture:

   - [Arch.schedulers_per_sm] warp schedulers per SM, each issuing at
     most one instruction per cycle from its own warp pool (greedy
     round-robin);
   - in-order warps with a scoreboard: a warp may issue its next
     instruction once the previous one's latency has elapsed — so a lone
     warp of dependent ALU ops reaches IPC 1/alu_latency, and hiding
     latency requires *other eligible warps*, which is the mechanism
     horizontal fusion exploits (Section II-A);
   - structural hazards: a load/store unit occupied [lsu_throughput]
     cycles per memory transaction (so uncoalesced accesses hurt), an
     SFU pipe, an MSHR-style cap on in-flight global transactions, and
     multi-cycle issue for fp32 on Volta's 64-core SM partitions;
   - partial barriers with arrival counters per (block, barrier id);
   - block-level residency limited by registers / shared memory /
     threads / block slots — the occupancy trade-off of Section IV-C;
   - a register cap below the kernel's natural register count injects
     local-memory spill traffic at a deterministic rate;
   - multi-stream dispatch with a leftover policy: stream 0's blocks
     fill SMs first, later streams backfill (how concurrent kernels
     actually share a GPU whose SMs are saturated, which is why parallel
     CUDA streams are not already "horizontal fusion for free").

   Counters reproduce the nvprof metrics of Section IV-A: issue-slot
   utilization, memory-instruction stall share, achieved occupancy, and
   elapsed cycles. *)

exception Timing_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Timing_error s)) fmt

(** How queued blocks reach SMs.

    [Fifo] models the real Grid Management Unit for equal-priority
    streams: blocks dispatch in submission order, and a block that does
    not fit anywhere blocks everything behind it — so two concurrent
    kernels overlap only at the first one's tail, which is why parallel
    CUDA streams are not already "horizontal fusion for free"
    (Section I of the paper).

    [Leftover] is an idealised distributor that backfills any queued
    block into any SM with room; exposed for the ablation benches. *)
type dispatch_policy = Fifo | Leftover

(** One kernel launch submitted to the simulated GPU. *)
type launch_spec = {
  label : string;
  block_traces : Trace.block array;
      (** representative per-block traces; block [b] of the grid replays
          trace [b mod Array.length block_traces] *)
  grid : int;
  threads_per_block : int;
  regs : int;  (** per-thread registers after any cap *)
  spill : int;  (** registers spilled by the cap (0 = none) *)
  smem : int;  (** shared memory per block, bytes (static + dynamic) *)
  stream : int;
}

(** Per-kernel results. *)
type kernel_metrics = {
  k_label : string;
  k_elapsed_cycles : int;  (** first dispatch to last block completion *)
  k_issued : int;  (** warp instructions issued *)
  k_blocks_per_sm : int;  (** occupancy-limited residency *)
}

type report = {
  elapsed_cycles : int;
  time_ms : float;
  issued_slots : int;
  total_slots : int;  (** schedulers x SMs x elapsed cycles *)
  issue_slot_util : float;  (** percent *)
  mem_stall_slots : int;
  sync_stall_slots : int;
  other_stall_slots : int;
  idle_slots : int;
  mem_stall_pct : float;
      (** percent of stall slots attributable to memory waits *)
  occupancy : float;  (** percent: avg resident warps / max warps *)
  kernels : kernel_metrics list;
}

(* ------------------------------------------------------------------ *)
(* Instruction costs                                                    *)
(* ------------------------------------------------------------------ *)

(* Spill traffic: one local-memory round trip is injected every
   [spill_interval spill] instructions.  nvcc spills the coldest live
   ranges first, so a handful of spilled registers costs little (their
   reloads sit in L1 and are touched rarely), while deep spilling shows
   up as the memory-stall growth Fig. 9 reports for Im2Col+Upsample.
   Calibrated so ~6 spilled registers inject ~1% extra instructions and
   deep spilling (tens of registers) costs ~5-10%. *)
let spill_divisor = 768

let spill_interval spill =
  if spill <= 0 then max_int else max 12 (spill_divisor / spill)

(* Per-class costs over the packed (code, payload) encoding, used by
   the replay inner loop without allocation.  Codes as in {!Instr.code}. *)

let hot_dep_latency (arch : Arch.t) code payload =
  match code with
  | 0 | 1 | 14 -> arch.alu_latency
  | 2 -> arch.dalu_latency
  | 3 -> arch.sfu_latency
  | 4 -> arch.shfl_latency
  | 5 ->
      let miss = payload lsr 10 and hit = payload land 1023 in
      let base = if miss > 0 then arch.gmem_latency else arch.l1_latency in
      base + ((miss + hit) * arch.lsu_throughput)
  | 6 -> arch.alu_latency + (payload * arch.lsu_throughput)
  | 7 -> arch.smem_latency + ((payload - 1) * arch.lsu_throughput)
  | 8 -> arch.alu_latency + ((payload - 1) * arch.lsu_throughput)
  | 9 | 10 -> arch.alu_latency
  | 11 -> arch.lmem_latency
  | 12 -> arch.alu_latency + arch.lsu_throughput
  | 13 -> arch.alu_latency
  | _ -> arch.alu_latency

let hot_lsu_cycles (arch : Arch.t) code payload =
  match code with
  | 5 ->
      ((payload lsr 10) + (payload land 1023)) * arch.lsu_throughput
  | 6 | 7 | 8 -> payload * arch.lsu_throughput
  | 9 -> 8 + (12 * payload)
  | 10 -> (2 + (4 * payload)) * arch.lsu_throughput
  | 11 | 12 -> arch.lsu_throughput
  | _ -> 0

let hot_sfu_cycles (arch : Arch.t) code = if code = 3 then arch.sfu_throughput else 0

let hot_sched_cycles (arch : Arch.t) code =
  match code with
  | 1 -> arch.fp32_units_factor
  | 2 -> 4
  | c when c >= 5 && c <= 12 ->
      (* memory instructions occupy the issue port an extra cycle for
         address generation / predication, as on real SMs *)
      2
  | _ -> 1

(* DRAM-side transactions: only L1 misses reach DRAM; spills are
   L1-resident and charged no DRAM bandwidth *)
let hot_gmem_txns code payload =
  match code with 5 -> payload lsr 10 | 6 | 10 -> payload | _ -> 0

(* nvprof's "memory dependency" stall reason covers global/local memory
   only; shared-memory traffic and atomics show up as execution
   dependencies.  Classification follows that definition. *)
let hot_is_gmem_stall code = code = 5 || code = 11
let hot_is_bar code = code = 13

(* ------------------------------------------------------------------ *)
(* Simulation state                                                     *)
(* ------------------------------------------------------------------ *)

(* warp run states *)
let st_ready = 0
let st_barrier = 1
let st_done = 2

type warp = {
  w_kernel : int;  (** index into specs *)
  w_block_uid : int;  (** unique block instance id (for barrier scoping) *)
  w_threads : int;  (** live threads in this warp *)
  codes : int array;
  payloads : int array;
  len : int;
  mutable pc : int;
  mutable ready_at : int;
  mutable state : int;
  mutable last_was_mem : bool;  (** stalled on a memory result *)
  mutable icount : int;  (** instructions issued (for load-use joins) *)
  pend_ready : int array;  (** ring: pending loads' completion cycles *)
  pend_use : int array;  (** ring: instruction index of first use *)
  mutable pend_head : int;
  mutable pend_n : int;
  mutable spill_counter : int;
  mutable pending_spill : int;  (** injected local accesses owed *)
}

type bar_key = int * int (* block uid, barrier id *)

(* A scheduler's warp pool: flat array + count + round-robin cursor.
   Removal compacts in place, preserving relative order. *)
type pool = { mutable parr : warp array; mutable pn : int; mutable prr : int }

let pool_create () = { parr = [||]; pn = 0; prr = 0 }

let pool_add p w =
  if p.pn = Array.length p.parr then begin
    let cap = max 8 (2 * Array.length p.parr) in
    let a = Array.make cap w in
    Array.blit p.parr 0 a 0 p.pn;
    p.parr <- a
  end;
  p.parr.(p.pn) <- w;
  p.pn <- p.pn + 1

let pool_compact p =
  let j = ref 0 in
  for i = 0 to p.pn - 1 do
    if p.parr.(i).state <> st_done then begin
      p.parr.(!j) <- p.parr.(i);
      incr j
    end
  done;
  p.pn <- !j;
  if p.pn > 0 then p.prr <- p.prr mod p.pn else p.prr <- 0

type block_instance = {
  b_kernel : int;
  b_uid : int;
  mutable b_warps_left : int;
}

type sm = {
  sm_id : int;
  pools : pool array;  (** per scheduler *)
  mutable warp_seq : int;  (** for scheduler assignment *)
  mutable blocks : block_instance list;
  mutable regs_used : int;
  mutable smem_used : int;
  mutable threads_used : int;
  mutable lsu_free_at : int;  (** global/local LD-ST path (L1/TEX) *)
  mutable smem_free_at : int;  (** shared-memory unit (incl. atomics) *)
  mutable sfu_free_at : int;
  mutable gmem_bw_free_at : int;  (** DRAM-bandwidth pipe *)
  sched_free_at : int array;
  sched_next_try : int array;
      (** scan-skip: no eligible warp before this cycle (valid while
          [sm_gen] unchanged and the miss was latency-only) *)
  sched_stall_class : int array;
      (** cached stall class for the scan-skip window (0 idle, 1 sync,
          2 mem, 3 other) *)
  sched_gen : int array;  (** generation at which sched_next_try was set *)
  mutable sm_gen : int;
      (** bumped whenever eligibility can change asynchronously:
          barrier release, block dispatch, structural-hazard miss *)
  mutable gmem_inflight : int;
  mutable gmem_next_complete : int;
      (** earliest completion cycle in [gmem_completions] *)
  gmem_completions : (int, int) Hashtbl.t;
      (** completion cycle -> transaction count (lazily drained) *)
  barriers : (bar_key, int * warp list) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* The simulator                                                        *)
(* ------------------------------------------------------------------ *)

type counters = {
  mutable issued : int;
  mutable mem_stall : int;
  mutable sync_stall : int;
  mutable other_stall : int;
  mutable idle : int;
  mutable resident_warp_cycles : int;  (** sum over cycles of warps *)
  issued_per_kernel : int array;
  first_dispatch : int array;
  last_complete : int array;
}

let run ?(policy = Fifo) (arch : Arch.t) (specs : launch_spec list) : report =
  if specs = [] then fail "no launches to simulate";
  let specs_a = Array.of_list specs in
  let nk = Array.length specs_a in
  Array.iter
    (fun s ->
      if Array.length s.block_traces = 0 then
        fail "launch %s has no recorded block traces" s.label;
      if s.threads_per_block <= 0 then
        fail "launch %s has nonpositive block size" s.label)
    specs_a;
  let limits = Arch.sm_limits arch in
  let blocks_per_sm_of k =
    Hfuse_core.Occupancy.blocks_per_sm limits ~regs:specs_a.(k).regs
      ~threads:specs_a.(k).threads_per_block ~smem:specs_a.(k).smem
  in
  Array.iteri
    (fun k s ->
      if blocks_per_sm_of k = 0 then
        fail "kernel %s cannot fit a single block on an SM (%d regs, %d smem)"
          s.label s.regs s.smem)
    specs_a;
  (* stream queues: per stream, FIFO of (kernel, block index) in
     submission order *)
  let streams =
    List.sort_uniq compare (List.map (fun s -> s.stream) specs)
  in
  let queues =
    List.map
      (fun st ->
        let q = Queue.create () in
        Array.iteri
          (fun k s ->
            if s.stream = st then
              for b = 0 to s.grid - 1 do
                Queue.add (k, b) q
              done)
          specs_a;
        q)
      streams
  in
  let sms =
    Array.init arch.sms (fun i ->
        {
          sm_id = i;
          pools = Array.init arch.schedulers_per_sm (fun _ -> pool_create ());
          warp_seq = 0;
          blocks = [];
          regs_used = 0;
          smem_used = 0;
          threads_used = 0;
          lsu_free_at = 0;
          smem_free_at = 0;
          sfu_free_at = 0;
          gmem_bw_free_at = 0;
          sched_free_at = Array.make arch.schedulers_per_sm 0;
          sched_next_try = Array.make arch.schedulers_per_sm 0;
          sched_stall_class = Array.make arch.schedulers_per_sm 0;
          sched_gen = Array.make arch.schedulers_per_sm (-1);
          sm_gen = 0;
          gmem_inflight = 0;
          gmem_next_complete = max_int;
          gmem_completions = Hashtbl.create 64;
          barriers = Hashtbl.create 8;
        })
  in
  let c =
    {
      issued = 0;
      mem_stall = 0;
      sync_stall = 0;
      other_stall = 0;
      idle = 0;
      resident_warp_cycles = 0;
      issued_per_kernel = Array.make nk 0;
      first_dispatch = Array.make nk max_int;
      last_complete = Array.make nk 0;
    }
  in
  let block_uid = ref 0 in
  let live_blocks = ref 0 in
  let reg_granule r =
    let g = limits.Hfuse_core.Occupancy.reg_alloc_granularity in
    max g ((r + g - 1) / g * g)
  in
  (* admission check for kernel k on SM *)
  let fits sm k =
    let s = specs_a.(k) in
    List.length sm.blocks < arch.max_blocks_per_sm
    && sm.threads_used + s.threads_per_block <= arch.max_threads_per_sm
    && sm.smem_used + s.smem <= arch.smem_per_sm
    && sm.regs_used + (reg_granule s.regs * s.threads_per_block)
       <= arch.regs_per_sm
  in
  let dispatch_block sm k b ~cycle =
    let s = specs_a.(k) in
    let uid = !block_uid in
    incr block_uid;
    incr live_blocks;
    let traces = s.block_traces.(b mod Array.length s.block_traces) in
    let warps = Array.length traces in
    let bi = { b_kernel = k; b_uid = uid; b_warps_left = warps } in
    sm.sm_gen <- sm.sm_gen + 1;
    sm.blocks <- bi :: sm.blocks;
    sm.regs_used <- sm.regs_used + (reg_granule s.regs * s.threads_per_block);
    sm.smem_used <- sm.smem_used + s.smem;
    sm.threads_used <- sm.threads_used + s.threads_per_block;
    if c.first_dispatch.(k) = max_int then c.first_dispatch.(k) <- cycle;
    for w = 0 to warps - 1 do
      let t = traces.(w) in
      let live = min 32 (s.threads_per_block - (w * 32)) in
      let warp =
        {
          w_kernel = k;
          w_block_uid = uid;
          w_threads = max 1 live;
          codes = t.Trace.codes;
          payloads = t.Trace.payloads;
          len = t.Trace.len;
          pc = 0;
          ready_at = cycle + 1;
          state = (if t.Trace.len = 0 then st_done else st_ready);
          last_was_mem = false;
          icount = 0;
          pend_ready = Array.make arch.load_slots 0;
          pend_use = Array.make arch.load_slots 0;
          pend_head = 0;
          pend_n = 0;
          spill_counter = 0;
          pending_spill = 0;
        }
      in
      if warp.state <> st_done then begin
        let sched = sm.warp_seq mod arch.schedulers_per_sm in
        sm.warp_seq <- sm.warp_seq + 1;
        pool_add sm.pools.(sched) warp
      end
      else bi.b_warps_left <- bi.b_warps_left - 1
    done;
    if bi.b_warps_left = 0 then begin
      (* degenerate: empty traces *)
      sm.blocks <- List.filter (fun b -> b != bi) sm.blocks;
      sm.regs_used <- sm.regs_used - (reg_granule s.regs * s.threads_per_block);
      sm.smem_used <- sm.smem_used - s.smem;
      sm.threads_used <- sm.threads_used - s.threads_per_block;
      decr live_blocks;
      c.last_complete.(k) <- max c.last_complete.(k) cycle
    end
  in
  let try_dispatch sm ~cycle =
    match policy with
    | Leftover ->
        (* idealised backfill: try queues in stream order *)
        let rec go queues =
          match queues with
          | [] -> ()
          | q :: rest -> (
              match Queue.peek_opt q with
              | Some (k, _) when fits sm k ->
                  let k, b = Queue.pop q in
                  dispatch_block sm k b ~cycle;
                  go (q :: rest)
              | _ -> go rest)
        in
        go queues
    | Fifo ->
        (* global submission order with head-of-line blocking: only the
           first non-empty queue's head may dispatch *)
        let rec head = function
          | [] -> None
          | q :: rest -> if Queue.is_empty q then head rest else Some q
        in
        let continue_ = ref true in
        while !continue_ do
          match head queues with
          | Some q when (match Queue.peek_opt q with
                        | Some (k, _) -> fits sm k
                        | None -> false) ->
              let k, b = Queue.pop q in
              dispatch_block sm k b ~cycle
          | _ -> continue_ := false
        done
  in
  let complete_block sm (bi : block_instance) ~cycle =
    let s = specs_a.(bi.b_kernel) in
    sm.blocks <- List.filter (fun b -> b != bi) sm.blocks;
    sm.regs_used <- sm.regs_used - (reg_granule s.regs * s.threads_per_block);
    sm.smem_used <- sm.smem_used - s.smem;
    sm.threads_used <- sm.threads_used - s.threads_per_block;
    decr live_blocks;
    c.last_complete.(bi.b_kernel) <- max c.last_complete.(bi.b_kernel) cycle;
    try_dispatch sm ~cycle
  in
  let find_block sm uid =
    List.find (fun b -> b.b_uid = uid) sm.blocks
  in
  (* initial fill *)
  let cycle = ref 0 in
  Array.iter (fun sm -> try_dispatch sm ~cycle:0) sms;
  let queues_empty () = List.for_all Queue.is_empty queues in
  (* drain gmem completions up to now *)
  let drain_gmem sm ~now =
    if sm.gmem_next_complete <= now then begin
      let next = ref max_int in
      Hashtbl.filter_map_inplace
        (fun t n ->
          if t <= now then begin
            sm.gmem_inflight <- sm.gmem_inflight - n;
            None
          end
          else begin
            if t < !next then next := t;
            Some n
          end)
        sm.gmem_completions;
      sm.gmem_next_complete <- !next;
      (* in-flight capacity freed: structural misses may clear *)
      sm.sm_gen <- sm.sm_gen + 1
    end
  in
  (* issue one instruction of [w] on [sm]/[sched]; assumes eligibility *)
  let issue sm sched (w : warp) ~now =
    let s = specs_a.(w.w_kernel) in
    let code, payload =
      if w.pending_spill > 0 then begin
        w.pending_spill <- w.pending_spill - 1;
        if w.pending_spill land 1 = 0 then (11, 0) (* LDL *) else (12, 0)
      end
      else begin
        let code = w.codes.(w.pc) and payload = w.payloads.(w.pc) in
        w.pc <- w.pc + 1;
        (* spill injection *)
        (if s.spill > 0 then begin
           w.spill_counter <- w.spill_counter + 1;
           if w.spill_counter >= spill_interval s.spill then begin
             w.spill_counter <- 0;
             w.pending_spill <- 2 (* one store + one reload *)
           end
         end);
        (code, payload)
      end
    in
    c.issued <- c.issued + 1;
    c.issued_per_kernel.(w.w_kernel) <- c.issued_per_kernel.(w.w_kernel) + 1;
    (* load-use scoreboard: loads park in a small ring; the warp only
       stalls when it reaches a pending load's use point (the compiler
       hoists/unrolls, so several loads pipeline per warp) *)
    let is_load = code = 5 || code = 7 || code = 11 in
    w.icount <- w.icount + 1;
    let slots = Array.length w.pend_ready in
    let join_head () =
      let r = w.pend_ready.(w.pend_head) in
      if r > w.ready_at then begin
        w.ready_at <- r;
        w.last_was_mem <- true
      end;
      w.pend_head <- (w.pend_head + 1) mod slots;
      w.pend_n <- w.pend_n - 1
    in
    w.last_was_mem <- false;
    while w.pend_n > 0 && w.pend_use.(w.pend_head) <= w.icount do
      join_head ()
    done;
    if is_load then begin
      if w.pend_n = slots then join_head ();
      let tail = (w.pend_head + w.pend_n) mod slots in
      w.pend_ready.(tail) <- now + hot_dep_latency arch code payload;
      w.pend_use.(tail) <- w.icount + arch.load_use_distance;
      w.pend_n <- w.pend_n + 1;
      w.ready_at <- max w.ready_at (now + arch.alu_latency)
    end
    else
      w.ready_at <- max w.ready_at (now + hot_dep_latency arch code payload);
    let lsu = hot_lsu_cycles arch code payload in
    if lsu > 0 then begin
      if code = 7 || code = 8 || code = 9 then
        sm.smem_free_at <- max sm.smem_free_at now + lsu
      else sm.lsu_free_at <- max sm.lsu_free_at now + lsu
    end;
    let sfu = hot_sfu_cycles arch code in
    if sfu > 0 then sm.sfu_free_at <- max sm.sfu_free_at now + sfu;
    let schedc = hot_sched_cycles arch code in
    if schedc > 1 then sm.sched_free_at.(sched) <- now + schedc;
    let register_completion t n =
      if n > 0 then begin
        if t < sm.gmem_next_complete then sm.gmem_next_complete <- t;
        Hashtbl.replace sm.gmem_completions t
          (n + Option.value (Hashtbl.find_opt sm.gmem_completions t) ~default:0)
      end
    in
    (if code = 5 then begin
       (* loads: misses pay DRAM latency and bandwidth; cache hits hold
          their MSHR for the (shorter) cache round trip only *)
       let miss = payload lsr 10 and hit = payload land 1023 in
       sm.gmem_inflight <- sm.gmem_inflight + miss + hit;
       if miss > 0 then
         sm.gmem_bw_free_at <-
           max sm.gmem_bw_free_at now + (miss * arch.gmem_cyc_per_txn);
       register_completion (now + arch.gmem_latency) miss;
       register_completion (now + arch.l1_latency) hit
     end
     else begin
       let txns = hot_gmem_txns code payload in
       if txns > 0 then begin
         sm.gmem_inflight <- sm.gmem_inflight + txns;
         (* stores drain through the L2 write buffer: half the DRAM-pipe
            charge of a read *)
         let bw_cost =
           if code = 6 then (txns * arch.gmem_cyc_per_txn + 1) / 2
           else txns * arch.gmem_cyc_per_txn
         in
         sm.gmem_bw_free_at <- max sm.gmem_bw_free_at now + bw_cost;
         register_completion
           (now + (if code = 11 || code = 12 then arch.lmem_latency
                   else arch.gmem_latency))
           txns
       end
     end);
    (* barrier? *)
    (if hot_is_bar code then
       match Instr.decode code payload with
       | Instr.Bar (id, count) ->
           let key = (w.w_block_uid, id) in
           let arrived, waiters =
             Option.value
               (Hashtbl.find_opt sm.barriers key)
               ~default:(0, [])
           in
           let arrived = arrived + w.w_threads in
           if arrived >= count then begin
             (* release all waiters and this warp *)
             List.iter
               (fun (x : warp) ->
                 x.state <- st_ready;
                 x.ready_at <- now + arch.alu_latency)
               waiters;
             w.ready_at <- now + arch.alu_latency;
             sm.sm_gen <- sm.sm_gen + 1;
             Hashtbl.remove sm.barriers key
           end
           else begin
             w.state <- st_barrier;
             Hashtbl.replace sm.barriers key (arrived, w :: waiters)
           end
       | _ -> ());
    (* done?  (a warp parked at a barrier is not finished even if the
       barrier was its last instruction) *)
    if w.pc >= w.len && w.pending_spill = 0 && w.state <> st_barrier then begin
      w.state <- st_done;
      let bi = find_block sm w.w_block_uid in
      bi.b_warps_left <- bi.b_warps_left - 1;
      if bi.b_warps_left = 0 then complete_block sm bi ~cycle:now
    end
  in
  (* can [w]'s next instruction structurally issue now?
     [struct_miss] is set when a latency-ready warp was blocked by a
     structural hazard (which can clear without a warp event). *)
  let struct_miss = ref false in
  let eligible sm (w : warp) ~now =
    w.state = st_ready
    && w.ready_at <= now
    &&
    let code, payload =
      if w.pending_spill > 0 then
        if w.pending_spill land 1 = 0 then (11, 0) else (12, 0)
      else (w.codes.(w.pc), w.payloads.(w.pc))
    in
    (* every global-path sector (L2/DRAM) holds an MSHR while in flight *)
    let txns =
      if code = 5 then (payload lsr 10) + (payload land 1023)
      else hot_gmem_txns code payload
    in
    let pipe_free =
      if hot_lsu_cycles arch code payload = 0 then true
      else if code = 7 || code = 8 || code = 9 then sm.smem_free_at <= now
      else sm.lsu_free_at <= now
    in
    let ok =
      pipe_free
      && (hot_sfu_cycles arch code = 0 || sm.sfu_free_at <= now)
      && (txns = 0
         || (sm.gmem_inflight + txns <= arch.gmem_max_inflight
            && sm.gmem_bw_free_at <= now))
    in
    if not ok then struct_miss := true;
    ok
  in
  (* one scheduler step; returns -1 when it issued (or its port is busy
     completing an earlier multi-cycle issue, which is still a utilised
     slot), otherwise the stall class: 0 idle, 1 sync, 2 mem, 3 other *)
  let busy_slots = ref 0 in
  let step_scheduler sm sched ~now =
    if sm.sched_free_at.(sched) > now then begin
      incr busy_slots;
      -1
    end
    else if
      sm.sched_gen.(sched) = sm.sm_gen && sm.sched_next_try.(sched) > now
    then sm.sched_stall_class.(sched)
      (* cached miss: nothing can have become eligible *)
    else begin
      let p = sm.pools.(sched) in
      if p.pn = 0 then 0
      else begin
        let found = ref None in
        struct_miss := false;
        (* one pass: find an eligible warp, and gather the stall
           classification facts in case there is none *)
        let all_barrier = ref true and any_mem = ref false in
        let next_ready = ref max_int in
        (try
           for i = 0 to p.pn - 1 do
             let idx = (p.prr + i) mod p.pn in
             let w = p.parr.(idx) in
             if eligible sm w ~now then begin
               found := Some (idx, w);
               raise Exit
             end;
             if w.state <> st_barrier then all_barrier := false;
             if w.state = st_ready then begin
               if w.ready_at > now && w.ready_at < !next_ready then
                 next_ready := w.ready_at;
               if
                 w.last_was_mem
                 || (w.pc < w.len && hot_is_gmem_stall w.codes.(w.pc))
               then any_mem := true
             end
           done
         with Exit -> ());
        match !found with
        | Some (idx, w) ->
            p.prr <- (idx + 1) mod p.pn;
            issue sm sched w ~now;
            if w.state = st_done then pool_compact p;
            -1
        | None ->
            let cls =
              if !all_barrier then 1 else if !any_mem then 2 else 3
            in
            (* cache the miss when it was latency-only *)
            if not !struct_miss then begin
              sm.sched_next_try.(sched) <- !next_ready;
              sm.sched_stall_class.(sched) <- cls;
              sm.sched_gen.(sched) <- sm.sm_gen
            end;
            cls
      end
    end
  in
  let add_stall cls n =
    match cls with
    | 0 -> c.idle <- c.idle + n
    | 1 -> c.sync_stall <- c.sync_stall + n
    | 2 -> c.mem_stall <- c.mem_stall + n
    | _ -> c.other_stall <- c.other_stall + n
  in
  (* next interesting cycle on an SM (for skip-ahead) *)
  let next_event sm ~now =
    let t = ref max_int in
    let upd x = if x > now && x < !t then t := x in
    Array.iter
      (fun p ->
        for i = 0 to p.pn - 1 do
          let w = p.parr.(i) in
          if w.state = st_ready then upd w.ready_at
        done)
      sm.pools;
    upd sm.lsu_free_at;
    upd sm.smem_free_at;
    upd sm.sfu_free_at;
    upd sm.gmem_bw_free_at;
    Array.iter upd sm.sched_free_at;
    (* gmem completions can unblock the in-flight limit *)
    upd sm.gmem_next_complete;
    !t
  in
  let all_warps_done () =
    !live_blocks = 0 && queues_empty ()
  in
  let max_cycles = 2_000_000_000 in
  let finished = ref false in
  let last_classes = Array.make (arch.sms * arch.schedulers_per_sm) (-1) in
  while not !finished do
    if all_warps_done () then finished := true
    else begin
      let now = !cycle in
      if now > max_cycles then fail "timing simulation exceeded cycle budget";
      let progressed = ref false in
      let total_resident = ref 0 in
      Array.iteri
        (fun si sm ->
          drain_gmem sm ~now;
          for sched = 0 to arch.schedulers_per_sm - 1 do
            let r = step_scheduler sm sched ~now in
            last_classes.((si * arch.schedulers_per_sm) + sched) <- r;
            if r < 0 then progressed := true else add_stall r 1
          done;
          Array.iter (fun p -> total_resident := !total_resident + p.pn)
            sm.pools)
        sms;
      c.resident_warp_cycles <- c.resident_warp_cycles + !total_resident;
      if !progressed then cycle := now + 1
      else begin
        (* skip ahead to the next event, charging the skipped cycles with
           this cycle's stall classification *)
        let t =
          Array.fold_left (fun acc sm -> min acc (next_event sm ~now)) max_int
            sms
        in
        if t = max_int then begin
          if all_warps_done () then finished := true
          else
            fail
              "timing deadlock at cycle %d (barrier never satisfied or \
               dispatch starvation)"
              now
        end
        else begin
          let delta = t - now in
          (* charge the skipped cycles with this cycle's classification *)
          if delta > 1 then begin
            Array.iter (fun cls -> if cls >= 0 then add_stall cls (delta - 1))
              last_classes;
            c.resident_warp_cycles <-
              c.resident_warp_cycles + (!total_resident * (delta - 1))
          end;
          cycle := t
        end
      end
    end
  done;
  let elapsed = !cycle in
  let total_slots = arch.sms * arch.schedulers_per_sm * max 1 elapsed in
  let issued_all = c.issued + !busy_slots in
  let stall_slots = c.mem_stall + c.sync_stall + c.other_stall in
  let time_ms =
    float_of_int elapsed /. (arch.clock_ghz *. 1e9) *. 1e3
  in
  let kernels =
    List.mapi
      (fun k s ->
        {
          k_label = s.label;
          k_elapsed_cycles =
            (if c.first_dispatch.(k) = max_int then 0
             else c.last_complete.(k) - c.first_dispatch.(k));
          k_issued = c.issued_per_kernel.(k);
          k_blocks_per_sm = blocks_per_sm_of k;
        })
      specs
  in
  {
    elapsed_cycles = elapsed;
    time_ms;
    issued_slots = issued_all;
    total_slots;
    issue_slot_util =
      100.0 *. float_of_int issued_all /. float_of_int total_slots;
    mem_stall_slots = c.mem_stall;
    sync_stall_slots = c.sync_stall;
    other_stall_slots = c.other_stall;
    idle_slots = c.idle;
    mem_stall_pct =
      (if stall_slots = 0 then 0.0
       else 100.0 *. float_of_int c.mem_stall /. float_of_int stall_slots);
    occupancy =
      100.0
      *. float_of_int c.resident_warp_cycles
      /. float_of_int (arch.sms * Arch.max_warps_per_sm arch * max 1 elapsed);
    kernels;
  }

(** Reference cycle-level replay engine (pre-event-driven), kept only
    for differential validation: {!Timing.run} must reproduce this
    module's report bit-for-bit.  Quadratic-ish in SM count x cycles;
    use {!Timing} everywhere else.

    Models per SM: 4 schedulers issuing one instruction per cycle from
    their warp pools (greedy round-robin); in-order warps with a
    multi-slot load scoreboard (loads park until a compiler-scheduled
    use point, so several pipeline per warp); per-class dependency
    latencies; structural pipes (DRAM bandwidth, MSHR in-flight cap,
    separate shared-memory and global LD/ST units, SFU, double-width
    fp32 issue on Volta); partial-barrier arrival counters; block
    residency limited exactly as {!Hfuse_core.Occupancy} computes; and
    deterministic spill-traffic injection for register caps.

    Counters reproduce the nvprof metrics of the paper's Section IV-A. *)

exception Timing_error of string

(** How queued blocks reach SMs.  [Fifo] models the real Grid Management
    Unit for equal-priority streams: global submission order with
    head-of-line blocking, so concurrent kernels overlap only at the
    first one's tail.  [Leftover] is an idealised backfilling
    distributor, exposed for the ablation benches. *)
type dispatch_policy = Fifo | Leftover

(** One kernel launch submitted to the simulated GPU. *)
type launch_spec = {
  label : string;
  block_traces : Trace.block array;
      (** representative per-block traces; block [b] replays trace
          [b mod length] *)
  grid : int;
  threads_per_block : int;
  regs : int;  (** per-thread registers after any cap *)
  spill : int;  (** registers spilled by the cap (0 = none) *)
  smem : int;  (** shared bytes per block (static + dynamic) *)
  stream : int;
}

type kernel_metrics = {
  k_label : string;
  k_elapsed_cycles : int;
  k_issued : int;
  k_blocks_per_sm : int;
}

type report = {
  elapsed_cycles : int;
  time_ms : float;
  issued_slots : int;
  total_slots : int;
  issue_slot_util : float;  (** percent *)
  mem_stall_slots : int;
  sync_stall_slots : int;
  other_stall_slots : int;
  idle_slots : int;
  mem_stall_pct : float;
      (** percent of stall slots waiting on global/local memory (the
          nvprof "memory dependency" definition) *)
  occupancy : float;  (** percent achieved *)
  kernels : kernel_metrics list;
}

(** Run the launches to completion.  Deterministic.
    @raise Timing_error when a kernel cannot fit one block on an SM,
    a barrier can never be satisfied, or the cycle budget is exceeded. *)
val run : ?policy:dispatch_policy -> Arch.t -> launch_spec list -> report

(** Analytical cost model for ranking fusion candidates without
    simulating them — the phase-1.5 pruning step of the search.

    Scores come from static inputs only: the pair's instruction mixes
    ({!Hfuse_core.Analyzer}), the candidate's partition / register
    estimate / register bound / shared memory, residency from
    {!Hfuse_core.Occupancy.blocks_per_sm}, and the architecture's
    latency and throughput parameters ({!Gpusim.Arch}).  The score is a
    roofline max of an issue-bandwidth bound, a DRAM-bandwidth bound and
    an occupancy-dependent latency-hiding bound; lower is better, and a
    candidate that cannot run at all (zero resident blocks) scores
    [infinity].  Scores are relative — use {!calibrate_scale} to relate
    them to simulated times when measuring model quality. *)

open Hfuse_core

(** Pair-level features, computed once per search (candidate-invariant):
    instruction mixes and native work totals of the two kernels, plus
    the architecture and its SM limits. *)
type inputs = {
  arch : Gpusim.Arch.t;
  limits : Occupancy.sm_limits;
  mix1 : Analyzer.mix;
  mix2 : Analyzer.mix;
  work1 : int;  (** kernel 1 total threads at its native launch *)
  work2 : int;
  native1 : Kernel_info.t;  (** kernel 1 at its native configuration *)
  native2 : Kernel_info.t;
  cal1 : float;  (** kernel 1 cost multiplier from {!calibrate} (1 = raw) *)
  cal2 : float;
  probe : probe_model option;
      (** empirical per-pair shape from {!calibrate_probes} *)
}

(** Empirical time-vs-partition shapes fitted from profiled probe
    candidates, one {!family} per candidate family: the unbounded
    candidates ([p_unb]) and, per spilling register bound, its capped
    group ([p_capped]) — a register cap changes residency, spill
    traffic and the sides' domination crossover at once, so the
    families are fitted independently.  A family predicts
    [f_floor + max_i (f_l_i / (b * d_i))].  [p_times] records the
    probes' own observed times; a probed candidate is scored at ground
    truth.  A spilling candidate whose bound has no fitted family falls
    back to the unbounded fit under the static per-mix spill
    multiplier. *)
and probe_model = {
  p_unb : family;
  p_capped : (int * family) list;
  p_times : ((Partition.t * int option) * float) list;
}

and family = { f_floor : float; f_l1 : float; f_l2 : float }

(** [of_pair ~arch k1 k2] analyses the pair once.  [limits] defaults to
    [Gpusim.Arch.sm_limits arch].  The result is uncalibrated
    ([cal1 = cal2 = 1]). *)
val of_pair :
  ?limits:Occupancy.sm_limits ->
  arch:Gpusim.Arch.t ->
  Kernel_info.t ->
  Kernel_info.t ->
  inputs

(** Pin each kernel's cost magnitude to one observed solo run.  The
    static mixes rest on loop-trip guesses, so the RATIO of the two
    kernels' per-thread costs — what the partition ranking hinges on —
    can be off by integer factors; [calibrate inp ~solo1 ~solo2]
    (observed solo elapsed cycles of each kernel at its native launch)
    sets [cal1]/[cal2] to observed-over-predicted.  An unusable
    observation (non-finite or non-positive) leaves that side
    uncalibrated. *)
val calibrate : inputs -> solo1:float -> solo2:float -> inputs

(** Fit the empirical {!probe_model} from profiled probe candidates.
    [lo] and [hi] must be UNBOUNDED candidates at the extremes of the
    partition range (minimal and maximal [d1]) with their simulated
    times; each pins the hyperbola of the side it starves.  [mid], an
    unbounded candidate near the middle, pins the residency-invariant
    floor by fixed point (no [mid] means floor 0).  [capped] holds
    profiled register-BOUNDED candidates — ideally the extremes and a
    middle of each spilling bound's group — from which each group's own
    family is fitted the same way (a group with fewer than two usable
    probes gets none and stays on the static spill multiplier).  With a
    fitted model, {!score} switches from the static roofline to the
    probe path; an unusable unbounded extreme (failed profile,
    register-bounded, zero residency) disables it. *)
val calibrate_probes :
  inputs ->
  lo:(Hfuse.t * Search.config) * float ->
  ?mid:(Hfuse.t * Search.config) * float ->
  ?capped:((Hfuse.t * Search.config) * float) list ->
  hi:(Hfuse.t * Search.config) * float ->
  unit ->
  inputs

(** Score one candidate (lower is better; [infinity] = cannot run).
    Monotone in occupancy starvation: for the same pair, a
    configuration with fewer resident blocks (or a tighter register
    bound, i.e. more spilling) never scores better. *)
val score : inputs -> fused:Hfuse.t -> config:Search.config -> float

(** Score a whole candidate list, in order — the shape
    {!Hfuse_core.Search.search}'s [rank] hook expects. *)
val rank : inputs -> (Hfuse.t * Search.config) list -> float list

(** Index of the model's preferred candidate: the first finite minimum
    score.  [None] when every score is non-finite. *)
val model_pick : float list -> int option

(** Default pruning window for [--prune]: how many of the model's
    best-ranked candidates the search still simulates. *)
val default_top_k : int

(** Least-squares scale factor [c] minimising [(c*score - time)^2] over
    the pairs where both are finite — relates model scores to simulated
    times for calibration and regret reporting.  [None] when no finite
    pair exists. *)
val calibrate_scale : scores:float list -> times:float list -> float option

(* Analytical cost model for ranking fusion candidates without
   simulating them — the phase-1.5 pruning step of the search.

   The paper's Fig. 6 search profiles every enumerated partition; for
   the interactive use cases in the roadmap that is the dominant cost
   (every candidate is a full cycle-level simulation).  Following the
   observation in Filipovič et al. that a cheap analytical performance
   model ranks fusion candidates well enough to validate only the
   leaders, this module scores a candidate from static inputs only:

   - per-kernel instruction mixes from {!Hfuse_core.Analyzer} (the
     latency-weighted summaries the affinity triage already trusts),
   - the candidate's partition, register estimate, shared memory and
     register bound (all known before simulation),
   - residency from {!Hfuse_core.Occupancy.blocks_per_sm}, and
   - per-architecture latencies/throughputs from {!Gpusim.Arch}.

   The model is a classical bound-and-max roofline over three per-SM
   time bounds, in cycles:

     T_issue : issue-bandwidth bound.  Every instruction costs issue
               slots (fp32 scaled by [fp32_units_factor], divisions by
               [sfu_throughput], memory ops by [lsu_throughput]) and the
               SM issues from [schedulers_per_sm] schedulers.  The
               per-candidate work totals are fixed by the pair, so this
               bound is constant across candidates — it matters only as
               a floor that keeps latency differences from being
               over-rewarded once the SM is throughput-saturated.

     T_mem   : DRAM-bandwidth bound: global transactions (loads, stores,
               read-modify-write atomics twice) times the SM's
               [gmem_cyc_per_txn] share.  Also candidate-invariant.

     T_lat   : the latency-hiding bound, the term the search actually
               discriminates on.  Each kernel's threads carry a
               dependent-latency chain (global loads overlapped up to
               [load_slots], shared/SFU/ALU ops partially overlapped by
               ILP); an SM hosts [b * d_i] resident threads of kernel i,
               so the chain is exposed once per "wave" of
               [work_i / (b * d_i)] refills.  Occupancy-starved
               candidates (small [b], lopsided [d_i]) take more waves
               and score worse — monotonically, which the tests pin
               down.  A register bound below the kernel's estimate
               spills the difference to local memory and lengthens the
               chain by [spill * lmem_latency] per wave.

   A candidate whose configuration cannot run at all (zero resident
   blocks) scores infinite.  Absolute scale is irrelevant for ranking;
   {!calibrate_scale} fits the one free scale factor against simulated
   times (report JSON `elapsed_cycles` / `time_ms`) so model quality —
   rank agreement and regret — can be measured and gated. *)

open Hfuse_core

type inputs = {
  arch : Gpusim.Arch.t;
  limits : Occupancy.sm_limits;
  mix1 : Analyzer.mix;
  mix2 : Analyzer.mix;
  work1 : int;  (** kernel 1 total threads at its native launch *)
  work2 : int;
  native1 : Kernel_info.t;
  native2 : Kernel_info.t;
  cal1 : float;  (** kernel 1 cost multiplier from {!calibrate} (1 = raw) *)
  cal2 : float;
  probe : probe_model option;
      (** empirical per-pair shape from {!calibrate_probes} *)
}

(* Empirical time-vs-partition shapes fitted from profiled probe
   candidates.  Each family (the unbounded candidates; the candidates
   capped at one spilling register bound) gets its own fit — a
   residency-invariant floor plus one latency hyperbola per side, the
   candidate's time being [floor + max_i (l_i / (b * d_i))] — because
   a register cap changes the physics wholesale: residency doubles,
   spill traffic inflates the throughput floor and lengthens the
   chains, and the two sides' domination crossover moves.  [p_times]
   holds the probes' own observed times: a probed candidate is scored
   at ground truth, never at a fit of itself. *)
and probe_model = {
  p_unb : family;
  p_capped : (int * family) list;
      (* keyed by the spilling register bound *)
  p_times : ((Partition.t * int option) * float) list;
}

and family = { f_floor : float; f_l1 : float; f_l2 : float }

let of_pair ?limits ~(arch : Gpusim.Arch.t) (k1 : Kernel_info.t)
    (k2 : Kernel_info.t) : inputs =
  let limits =
    match limits with Some l -> l | None -> Gpusim.Arch.sm_limits arch
  in
  {
    arch;
    limits;
    mix1 = Analyzer.analyze_fn k1.fn;
    mix2 = Analyzer.analyze_fn k2.fn;
    work1 = k1.grid * Kernel_info.threads_per_block k1;
    work2 = k2.grid * Kernel_info.threads_per_block k2;
    native1 = k1;
    native2 = k2;
    cal1 = 1.;
    cal2 = 1.;
    probe = None;
  }

(* -- per-thread features of one kernel's mix ------------------------- *)

(* Issue slots one thread's instructions consume (arbitrary but
   arch-consistent unit). *)
let issue_cost (a : Gpusim.Arch.t) (m : Analyzer.mix) : float =
  float_of_int
    (m.int_ops
    + (m.float_ops * a.fp32_units_factor)
    + (m.div_ops * a.sfu_throughput)
    + ((m.global_loads + m.global_stores + m.shared_ops + m.atomics)
      * a.lsu_throughput)
    + m.shuffles + m.barriers)

(* Global 32-byte transactions one thread generates (atomics are a
   read-modify-write round trip). *)
let mem_txns (m : Analyzer.mix) : float =
  float_of_int (m.global_loads + m.global_stores + (2 * m.atomics))

(* Atomics to a small table (the histogram pattern) collide within a
   warp and the colliding lanes serialize, so one atomic's exposed
   latency is several round trips, not one.  A fixed pessimistic
   contention of warp_size/4 lanes per address matches the simulator's
   read-modify-write replay behaviour closely enough for ranking. *)
let atomic_contention (a : Gpusim.Arch.t) : int = max 1 (a.warp_size / 4)

(* Dependent-latency chain one thread exposes per residency wave:
   global loads overlap up to the scoreboard's [load_slots], shared
   and ALU traffic is mostly hidden by ILP, SFU sequences are serial,
   and atomics serialize further under intra-warp contention. *)
let latency_chain (a : Gpusim.Arch.t) (m : Analyzer.mix) : float =
  let f = float_of_int in
  (f (m.global_loads * a.gmem_latency) /. f (max 1 a.load_slots))
  +. (f (m.shared_ops * a.smem_latency) /. 4.)
  +. f (m.div_ops * a.sfu_latency)
  +. f (m.atomics * a.gmem_latency * atomic_contention a)
  +. f (m.shuffles * a.shfl_latency)
  +. f (m.barriers * a.smem_latency)
  +. (f ((m.int_ops + m.float_ops) * a.alu_latency) /. 8.)

(* -- the candidate score --------------------------------------------- *)

(* Total instructions one thread executes — the base rate for the
   engine's deterministic spill injection (one local round trip every
   [Gpusim.Timing.spill_interval spill] instructions). *)
let instr_total (m : Analyzer.mix) : int =
  m.int_ops + m.float_ops + m.div_ops + m.global_loads + m.global_stores
  + m.shared_ops + m.atomics + m.shuffles + m.barriers

(* Tie-break weight: when several candidates sit under the same
   throughput floor, prefer the one exposing the least latency — the
   simulator rewards headroom (tail effects, stall overlap) in the
   same direction. *)
let latency_tiebreak = 1. /. 16.

(* One kernel's share of a launch: its mix, total threads, per-block
   thread count, and the calibration multiplier applied to every one of
   its cost terms (a pure work-magnitude correction, see {!calibrate}). *)
type side = { mix : Analyzer.mix; work : float; d : int; cal : float }

(* Roofline with a latency tie-break, over the sides resident together
   on the SM with [b] blocks each.  The throughput bounds are per-SM
   pipe totals: independent of the partition AND of the residency [b]
   (halving blocks per SM doubles the rounds but halves each round's
   pipe time), so they form a floor the candidate cannot beat.  The
   latency term is the only [b]- and partition-dependent part.  A pure
   max() would flatten every candidate under the floor into one
   plateau, so a small multiple of the latency term is added back:
   among floor-bound candidates the model prefers the one with the most
   latency headroom, which is also where the simulator's second-order
   effects (tails, stall overlap) point. *)
let roofline (a : Gpusim.Arch.t) ~(b : int) ~(spill_frac : float)
    (sides : side list) : float =
  let f = float_of_int in
  let sms = f (max 1 a.sms) in
  (* issue-bandwidth bound, plus the spill pairs' issue slots (memory
     class: two slots each) *)
  let t_issue =
    List.fold_left
      (fun acc s ->
        acc
        +. s.cal *. s.work
           *. (issue_cost a s.mix
              +. (spill_frac *. f (instr_total s.mix) *. 4.)))
      0. sides
    /. (sms *. f (max 1 a.schedulers_per_sm) *. f a.warp_size)
  in
  let t_mem =
    List.fold_left (fun acc s -> acc +. (s.cal *. s.work *. mem_txns s.mix)) 0.
      sides
    *. f a.gmem_cyc_per_txn
    /. (sms *. f a.warp_size)
  in
  (* spilled reloads lengthen each thread's dependency chain: one
     local-memory latency (overlapped like any load) plus LD/ST
     occupancy per injected pair *)
  let spill_chain i =
    spill_frac *. i
    *. ((f a.lmem_latency /. f (max 1 a.load_slots))
       +. f (2 * a.lsu_throughput))
  in
  let t_lat =
    List.fold_left
      (fun acc s ->
        (* the chain is exposed once per residency wave of this side *)
        let chain =
          latency_chain a s.mix +. spill_chain (f (instr_total s.mix))
        in
        let waves = s.work /. (sms *. f (b * s.d)) in
        Float.max acc (s.cal *. waves *. chain))
      0. sides
  in
  Float.max t_lat (Float.max t_issue t_mem) +. (latency_tiebreak *. t_lat)

(* How much a register cap lengthens side [mix]'s dependency chain,
   as a multiplier (1 = no spill).  A pure ratio of static terms, so
   it composes with the empirically calibrated chains too. *)
let spill_mult (a : Gpusim.Arch.t) ~(spill_frac : float) (mix : Analyzer.mix) :
    float =
  if spill_frac <= 0. then 1.
  else
    let f = float_of_int in
    let chain = latency_chain a mix in
    let extra =
      spill_frac
      *. f (instr_total mix)
      *. ((f a.lmem_latency /. f (max 1 a.load_slots))
         +. f (2 * a.lsu_throughput))
    in
    if chain > 0. then 1. +. (extra /. chain) else 1.

let score (inp : inputs) ~(fused : Hfuse.t) ~(config : Search.config) :
    float =
  let a = inp.arch in
  let { Partition.d1; d2 } = config.Search.partition in
  let d0 = d1 + d2 in
  let regs = fused.Hfuse.regs in
  let eff_regs =
    match config.Search.reg_bound with
    | Some r -> min r regs
    | None -> regs
  in
  let spill = regs - eff_regs in
  let smem = Kernel_info.smem_total (Hfuse.info fused) in
  let b =
    Occupancy.blocks_per_sm inp.limits ~regs:eff_regs ~threads:d0 ~smem
  in
  if b <= 0 then Float.infinity
  else
    (* the engine injects one local store + reload pair every
       [spill_interval] instructions; [spill_frac] is the injected
       fraction of extra instructions per thread *)
    let spill_frac =
      if spill <= 0 then 0.
      else 2. /. float_of_int (Gpusim.Timing.spill_interval spill)
    in
    match inp.probe with
    | Some p -> (
        (* Probe-calibrated path.  A probed candidate is scored at its
           own observed time.  Otherwise each side's exposed latency is
           a hyperbola [l_i / (b * d_i)] pinned by the probes of the
           candidate's own family (per-thread work scales with dn_i/d_i
           under the fixed-grid retuning, so the coefficient is
           partition-invariant), on top of that family's
           residency-invariant floor.  A spilling candidate whose
           register bound has no fitted family falls back to the
           unbounded fit with the static per-mix spill multiplier. *)
        let key = (config.Search.partition, config.Search.reg_bound) in
        match List.assoc_opt key p.p_times with
        | Some t -> t
        | None -> (
            let eval fam =
              fam.f_floor
              +. Float.max
                   (fam.f_l1 /. float_of_int (b * d1))
                   (fam.f_l2 /. float_of_int (b * d2))
            in
            if spill <= 0 then eval p.p_unb
            else
              match
                Option.bind config.Search.reg_bound (fun r ->
                    List.assoc_opt r p.p_capped)
              with
              | Some fam -> eval fam
              | None ->
                  p.p_unb.f_floor
                  +. Float.max
                       (p.p_unb.f_l1
                       *. spill_mult a ~spill_frac inp.mix1
                       /. float_of_int (b * d1))
                       (p.p_unb.f_l2
                       *. spill_mult a ~spill_frac inp.mix2
                       /. float_of_int (b * d2))))
    | None ->
        roofline a ~b ~spill_frac
          [
            {
              mix = inp.mix1;
              work = float_of_int inp.work1;
              d = d1;
              cal = inp.cal1;
            };
            {
              mix = inp.mix2;
              work = float_of_int inp.work2;
              d = d2;
              cal = inp.cal2;
            };
          ]

(* Uncalibrated prediction of one kernel's solo elapsed time at its
   native launch — the denominator of {!calibrate}'s correction
   ratio. *)
let solo_predict (inp : inputs) (info : Kernel_info.t) (mix : Analyzer.mix)
    (work : int) : float =
  let d = Kernel_info.threads_per_block info in
  let smem = Kernel_info.smem_total info in
  let b = Occupancy.blocks_per_sm inp.limits ~regs:info.regs ~threads:d ~smem in
  if b <= 0 then Float.infinity
  else
    roofline inp.arch ~b ~spill_frac:0.
      [ { mix; work = float_of_int work; d; cal = 1. } ]

let calibrate (inp : inputs) ~(solo1 : float) ~(solo2 : float) : inputs =
  (* The static mixes come from loop-weight guesses, so each kernel's
     absolute per-thread cost — and hence the RATIO between the two
     kernels, which is what the partition ranking hinges on — can be
     off by integer factors.  One observed solo run per kernel pins the
     magnitude down: the correction is observed / predicted, applied as
     a pure multiplier on every cost term of that kernel's side (a
     trip-count error inflates issue slots, transactions and latency
     chains alike).  An unusable ratio (non-finite or non-positive on
     either side) leaves that side uncalibrated. *)
  let cal_of pred obs =
    if Float.is_finite pred && pred > 0. && Float.is_finite obs && obs > 0.
    then obs /. pred
    else 1.
  in
  {
    inp with
    cal1 = cal_of (solo_predict inp inp.native1 inp.mix1 inp.work1) solo1;
    cal2 = cal_of (solo_predict inp inp.native2 inp.mix2 inp.work2) solo2;
  }

let calibrate_probes (inp : inputs) ~(lo : (Hfuse.t * Search.config) * float)
    ?(mid : ((Hfuse.t * Search.config) * float) option)
    ?(capped : ((Hfuse.t * Search.config) * float) list = [])
    ~(hi : (Hfuse.t * Search.config) * float) () : inputs =
  (* [lo]/[hi] are profiled UNBOUNDED candidates at the extremes of the
     partition range ([lo] starves kernel 1 with minimal d1, [hi]
     starves kernel 2), [mid] one near the middle; [capped] holds
     profiled register-bounded candidates, ideally the extremes and a
     middle of each spilling bound's group.  Within a family, each
     extreme pins the hyperbola of the side it starves and the middle
     probe pins the residency-invariant floor — a fixed point of
     [floor = t_mid - max of the floor-adjusted hyperbolas], which is a
     contraction because the extreme-to-middle residency ratios are
     below one.  Missing probes degrade gracefully: no middle means
     floor 0; a spilling bound with fewer than two usable probes gets
     no family and its candidates use the static spill multiplier.  An
     unusable unbounded extreme (failed profile, zero residency, a
     register bound after all) disables the probe path entirely and
     {!score} stays on the static roofline. *)
  let f = float_of_int in
  let geometry ?(bounded = false) ((fused, config) : Hfuse.t * Search.config)
      (t : float) : (int * int * int * float) option =
    let { Partition.d1; d2 } = config.Search.partition in
    let regs = fused.Hfuse.regs in
    let eff_regs =
      match config.Search.reg_bound with
      | Some r when bounded -> min r regs
      | _ -> regs
    in
    let b =
      Occupancy.blocks_per_sm inp.limits ~regs:eff_regs ~threads:(d1 + d2)
        ~smem:(Kernel_info.smem_total (Hfuse.info fused))
    in
    if
      (if bounded then config.Search.reg_bound <> None
       else config.Search.reg_bound = None)
      && b > 0 && Float.is_finite t && t > 0.
    then Some (d1, d2, b, t)
    else None
  in
  (* fit one family's floor + per-side hyperbolas from its extreme
     probes and (optionally) a middle one *)
  let fit_family ~(glo : int * int * int * float)
      ~(gmid : (int * int * int * float) option)
      ~(ghi : int * int * int * float) : family =
    let d1_lo, _, b_lo, t_lo = glo and _, d2_hi, b_hi, t_hi = ghi in
    let floor =
      match gmid with
      | Some (d1_m, d2_m, b_m, t_m) ->
          let r1 = f (b_lo * d1_lo) /. f (b_m * d1_m) in
          let r2 = f (b_hi * d2_hi) /. f (b_m * d2_m) in
          let rec fix fl n =
            let lat = Float.max ((t_lo -. fl) *. r1) ((t_hi -. fl) *. r2) in
            let fl' = Float.max 0. (t_m -. lat) in
            if n = 0 || Float.abs (fl' -. fl) < 1e-12 then fl'
            else fix fl' (n - 1)
          in
          fix 0. 30
      | None -> 0.
    in
    {
      f_floor = floor;
      f_l1 = Float.max 0. (t_lo -. floor) *. f (b_lo * d1_lo);
      f_l2 = Float.max 0. (t_hi -. floor) *. f (b_hi * d2_hi);
    }
  in
  let cand_lo, t_lo = lo and cand_hi, t_hi = hi in
  match (geometry cand_lo t_lo, geometry cand_hi t_hi) with
  | None, _ | _, None -> { inp with probe = None }
  | Some glo, Some ghi ->
      let gmid = Option.bind mid (fun (c, t) -> geometry c t) in
      let p_unb = fit_family ~glo ~gmid ~ghi in
      (* group the capped probes by their (spilling) register bound and
         fit a family per group that has at least two usable probes *)
      let groups : (int, ((int * int * int * float) * int) list ref) Hashtbl.t
          =
        Hashtbl.create 4
      in
      List.iter
        (fun (((fused, config) as cand), t) ->
          match config.Search.reg_bound with
          | Some r when fused.Hfuse.regs > r -> (
              match geometry ~bounded:true cand t with
              | Some ((d1, _, _, _) as g) ->
                  let cell =
                    match Hashtbl.find_opt groups r with
                    | Some cell -> cell
                    | None ->
                        let cell = ref [] in
                        Hashtbl.add groups r cell;
                        cell
                  in
                  cell := (g, d1) :: !cell
              | None -> ())
          | _ -> ())
        capped;
      let p_capped =
        Hashtbl.fold
          (fun r cell acc ->
            let probes =
              List.sort
                (fun ((_, _, _, _), d1a) ((_, _, _, _), d1b) ->
                  compare d1a d1b)
                !cell
            in
            match probes with
            | [] | [ _ ] -> acc
            | (first, d1_first) :: rest ->
                let (last, d1_last), middle =
                  let rec split acc_mid = function
                    | [ l ] -> (l, List.rev acc_mid)
                    | x :: tl -> split (x :: acc_mid) tl
                    | [] -> assert false
                  in
                  split [] rest
                in
                let gmid =
                  let target = (d1_first + d1_last) / 2 in
                  List.fold_left
                    (fun best (g, d1) ->
                      match best with
                      | Some (_, d1b) when abs (d1b - target) <= abs (d1 - target)
                        ->
                          best
                      | _ -> Some (g, d1))
                    None middle
                  |> Option.map fst
                in
                (r, fit_family ~glo:first ~gmid ~ghi:last) :: acc)
          groups []
      in
      let p_times =
        List.filter_map
          (fun (((_, config) : Hfuse.t * Search.config), t) ->
            if Float.is_finite t && t > 0. then
              Some ((config.Search.partition, config.Search.reg_bound), t)
            else None)
          ((lo :: hi :: Option.to_list mid) @ capped)
      in
      { inp with probe = Some { p_unb; p_capped; p_times } }

let rank (inp : inputs) (candidates : (Hfuse.t * Search.config) list) :
    float list =
  List.map (fun (fused, config) -> score inp ~fused ~config) candidates

(* Default pruning window: simulate the model's 6 best-ranked
   candidates.  Wide enough that the corpus-wide regret gate holds (the
   bench gate enforces it; the tightest pair needs rank 6), narrow
   enough that a pruned search still skips a meaningful share of the
   sweep on top of the probes it already paid for. *)
let default_top_k = 6

(* -- model-vs-simulator evaluation ----------------------------------- *)

let model_pick (scores : float list) : int option =
  let best = ref None in
  List.iteri
    (fun i s ->
      if Float.is_finite s then
        match !best with
        | Some (_, s') when s' <= s -> ()
        | _ -> best := Some (i, s))
    scores;
  Option.map fst !best

let calibrate_scale ~(scores : float list) ~(times : float list) :
    float option =
  (* least-squares scale c minimising sum (c*score - time)^2 over the
     finite pairs: c = sum(score*time) / sum(score^2) *)
  let num = ref 0. and den = ref 0. in
  List.iter2
    (fun s t ->
      if Float.is_finite s && Float.is_finite t then begin
        num := !num +. (s *. t);
        den := !den +. (s *. s)
      end)
    scores times;
  if !den > 0. then Some (!num /. !den) else None

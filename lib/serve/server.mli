(** The [hfuse serve] daemon: a Unix-domain-socket server speaking the
    newline-delimited JSON protocol of {!Protocol}.

    One accept loop, one reader thread per connection, one shared
    {!Hfuse_parallel.Pool} of worker domains running the verb bodies.
    Work verbs are scheduled with the request's priority under
    admission control (a full queue answers [overloaded] instead of
    queueing without bound).  Cheap verbs (ping/stats) are answered
    inline by the reader thread.

    Fault containment: a malformed line, unknown verb, bad per-request
    fault spec, or exception escaping a verb body each cost exactly
    one error response, never the process.  SIGPIPE is ignored. *)

type config = {
  socket_path : string;
  jobs : int;  (** worker domains (at least 1) *)
  queue_limit : int;  (** max queued-unstarted requests before [overloaded] *)
}

val default_queue_limit : int

type t

(** Bind the socket and spawn the worker pool (no accept loop yet).
    A stale socket file left by a dead daemon is replaced; a live
    daemon on the same path raises [Failure]. *)
val create : config -> t

(** Run the accept loop on the calling thread until {!request_stop}
    (or {!stop} from another thread).  On return the socket is closed
    and its file unlinked, running requests have answered, and the
    pool is shut down. *)
val serve : t -> unit

(** Signal the accept loop to wind down (safe from a signal handler). *)
val request_stop : t -> unit

val socket_path : t -> string

(** {!create} + {!serve} on a background thread — the in-process
    harness the tests use. *)
val start : config -> t

(** {!request_stop} and join the background {!start} thread. *)
val stop : t -> unit

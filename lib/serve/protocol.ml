(* Newline-delimited JSON wire protocol for `hfuse serve`.

   One request per line, one response per line; responses carry the
   request's [id] and may complete out of order (the daemon schedules
   work on a shared pool).  The encoding reuses the profiler's
   [Report.Json] emitter/parser — [Json.to_line] guarantees no raw
   newline escapes the framing even when kernel sources ride inside
   string fields. *)

module Json = Hfuse_profiler.Report.Json
module Settings = Hfuse_profiler.Settings
module Fault = Hfuse_fault.Fault

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

(* Per-request settings overrides.  The outer option is "key present
   in the request"; for cache_dir/fault the inner option distinguishes
   an explicit null ("force off") from a value — exactly the
   option-of-option shape [Settings.resolve] takes. *)
type settings_spec = {
  sp_trace_blocks : int option;
  sp_sim_fuel : int option;
  sp_trace_mem_mb : int option;
  sp_cache_dir : string option option;
  sp_fault : string option option;  (** fault spec string, {!Fault.to_spec} *)
}

let no_overrides =
  { sp_trace_blocks = None; sp_sim_fuel = None; sp_trace_mem_mb = None;
    sp_cache_dir = None; sp_fault = None }

type verb = Work of Ops.request_params | Stats | Ping

type request = {
  id : string;
  priority : int;  (** higher runs first; default 0 *)
  settings : settings_spec;
  verb : verb;
}

type error_code =
  | Parse_error
  | Invalid_request
  | Unknown_verb
  | Overloaded
  | Shutting_down
  | Internal

let code_name = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_verb -> "unknown_verb"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

type response =
  | Result of {
      id : string;
      exit_code : int;
      output : string;
      log : string;
      telemetry : Json.t;
    }
  | Failure of { id : string option; code : string; message : string }

let response_of_outcome ~id (o : Ops.outcome) =
  Result
    {
      id;
      exit_code = o.Ops.exit_code;
      output = o.Ops.output;
      log = o.Ops.log;
      telemetry = o.Ops.telemetry;
    }

let failure ?id code message = Failure { id; code = code_name code; message }

(* ------------------------------------------------------------------ *)
(* JSON field helpers                                                   *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let str_field ?default k j =
  match Json.member k j with
  | Some (Json.Str s) -> s
  | None -> ( match default with Some d -> d | None -> bad "%S is required" k)
  | Some _ -> bad "%S must be a string" k

let int_field ~default k j =
  match Json.member k j with
  | None -> default
  | Some (Json.Int n) -> n
  | Some _ -> bad "%S must be an integer" k

let int_opt k j =
  match Json.member k j with
  | None | Some Json.Null -> None
  | Some (Json.Int n) -> Some n
  | Some _ -> bad "%S must be an integer" k

let bool_field ~default k j =
  match Json.member k j with
  | None -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "%S must be a boolean" k

(* present-with-null vs present-with-string vs absent *)
let nullable_str_field k j =
  match Json.member k j with
  | None -> None
  | Some Json.Null -> Some None
  | Some (Json.Str s) -> Some (Some s)
  | Some _ -> bad "%S must be a string or null" k

(* ------------------------------------------------------------------ *)
(* Domain resolution                                                    *)
(* ------------------------------------------------------------------ *)

let arch_field j =
  let name =
    str_field ~default:Gpusim.Arch.gtx1080ti.Gpusim.Arch.name "arch" j
  in
  match Gpusim.Arch.by_name name with
  | Some a -> a
  | None -> bad "unknown architecture %S" name

let corpus_kernel k j =
  let name = str_field k j in
  match Kernel_corpus.Registry.find name with
  | Some s -> s
  | None -> bad "unknown corpus kernel %S" name

let kernel_src ~label j =
  match j with
  | Some (Json.Obj _ as o) ->
      {
        Ops.ks_path = str_field ~default:("<" ^ label ^ ">") "path" o;
        ks_source = str_field "source" o;
        ks_block = int_field ~default:256 "block" o;
        ks_smem = int_field ~default:0 "smem" o;
        ks_regs = int_opt "regs" o;
      }
  | Some _ -> bad "%S must be an object" label
  | None -> bad "%S is required" label

(* ------------------------------------------------------------------ *)
(* Request parsing                                                      *)
(* ------------------------------------------------------------------ *)

let settings_of j =
  match Json.member "settings" j with
  | None -> no_overrides
  | Some (Json.Obj _ as s) ->
      {
        sp_trace_blocks = int_opt "trace_blocks" s;
        sp_sim_fuel = int_opt "sim_fuel" s;
        sp_trace_mem_mb = int_opt "trace_mem_mb" s;
        sp_cache_dir = nullable_str_field "cache_dir" s;
        sp_fault = nullable_str_field "fault" s;
      }
  | Some _ -> bad "%S must be an object" "settings"

let params_of verb j =
  let p =
    match Json.member "params" j with
    | None -> Json.Obj []
    | Some (Json.Obj _ as p) -> p
    | Some _ -> bad "%S must be an object" "params"
  in
  match verb with
  | "ping" -> Ping
  | "stats" -> Stats
  | "fuse" ->
      Work
        (Ops.Fuse
           {
             f_k1 = kernel_src ~label:"k1" (Json.member "k1" p);
             f_k2 = kernel_src ~label:"k2" (Json.member "k2" p);
             f_grid = int_field ~default:8 "grid" p;
           })
  | "check" ->
      Work
        (Ops.Check
           {
             c_arch = arch_field p;
             c_k1 = kernel_src ~label:"k1" (Json.member "k1" p);
             c_k2 =
               (match Json.member "k2" p with
               | None | Some Json.Null -> None
               | k2 -> Some (kernel_src ~label:"k2" k2));
             c_grid = int_field ~default:8 "grid" p;
             c_repair = bool_field ~default:false "repair" p;
           })
  | "simulate" ->
      Work
        (Ops.Simulate
           {
             m_arch = arch_field p;
             m_kernel = corpus_kernel "kernel" p;
             m_size = int_opt "size" p;
             m_validate = bool_field ~default:false "validate" p;
             m_engine_stats = bool_field ~default:false "engine_stats" p;
           })
  | "search" ->
      Work
        (Ops.Search
           {
             s_arch = arch_field p;
             s_k1 = corpus_kernel "k1" p;
             s_k2 = corpus_kernel "k2" p;
             s_size1 = int_opt "size1" p;
             s_size2 = int_opt "size2" p;
             s_emit = bool_field ~default:false "emit" p;
             s_jobs = int_field ~default:1 "jobs" p;
             s_top_k = int_opt "top_k" p;
             s_repair = bool_field ~default:false "repair" p;
           })
  | v -> raise (Bad (Printf.sprintf "unknown verb %S" v))

(* Parse one request line.  Errors come back pre-shaped as the
   response to send, echoing the request id when one was readable. *)
let parse_request (line : string) : (request, response) result =
  match Json.of_string line with
  | Error msg -> Error (failure Parse_error msg)
  | Ok j -> (
      let id =
        match Json.member "id" j with
        | Some (Json.Str s) -> Some s
        | Some (Json.Int n) -> Some (string_of_int n)
        | _ -> None
      in
      match
        let id = match id with Some s -> s | None -> bad "%S is required" "id" in
        let verb =
          match Json.member "verb" j with
          | Some (Json.Str v) -> v
          | _ -> bad "%S is required" "verb"
        in
        {
          id;
          priority = int_field ~default:0 "priority" j;
          settings = settings_of j;
          verb = params_of verb j;
        }
      with
      | req -> Ok req
      | exception Bad msg ->
          let code =
            if String.length msg >= 12 && String.sub msg 0 12 = "unknown verb"
            then Unknown_verb
            else Invalid_request
          in
          Error (failure ?id code msg))

(* ------------------------------------------------------------------ *)
(* Settings resolution                                                  *)
(* ------------------------------------------------------------------ *)

(* Resolve a request's overrides into a concrete per-request settings
   record.  A malformed fault spec or non-positive knob raises
   ([Fault.Invalid_spec] / [Invalid_argument]); the daemon maps either
   to one [invalid_request] response — never a dead process. *)
let resolve_settings (sp : settings_spec) : Settings.t =
  let fault =
    match sp.sp_fault with
    | None -> None
    | Some None -> Some None
    | Some (Some spec) -> Some (Fault.plan_of_spec spec)
  in
  Settings.resolve ?trace_blocks:sp.sp_trace_blocks ?sim_fuel:sp.sp_sim_fuel
    ?trace_mem_mb:sp.sp_trace_mem_mb ?cache_dir:sp.sp_cache_dir ?fault ()

(* The CLI's capture of its own effective configuration, for shipping
   with a routed request so the daemon reproduces the one-shot
   behaviour exactly. *)
let spec_of_settings (s : Settings.t) : settings_spec =
  {
    sp_trace_blocks = Some s.Settings.trace_blocks;
    sp_sim_fuel = Some s.Settings.sim_fuel;
    sp_trace_mem_mb = Some s.Settings.trace_mem_mb;
    sp_cache_dir = Some s.Settings.cache_dir;
    sp_fault = Some (Option.map Fault.to_spec s.Settings.fault);
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                        *)
(* ------------------------------------------------------------------ *)

let json_of_kernel_src (k : Ops.kernel_src) : Json.t =
  Json.Obj
    ([
       ("path", Json.Str k.Ops.ks_path);
       ("source", Json.Str k.Ops.ks_source);
       ("block", Json.Int k.Ops.ks_block);
       ("smem", Json.Int k.Ops.ks_smem);
     ]
    @ match k.Ops.ks_regs with None -> [] | Some r -> [ ("regs", Json.Int r) ])

let json_of_params : Ops.request_params -> string * Json.t = function
  | Ops.Fuse p ->
      ( "fuse",
        Json.Obj
          [
            ("k1", json_of_kernel_src p.f_k1);
            ("k2", json_of_kernel_src p.f_k2);
            ("grid", Json.Int p.f_grid);
          ] )
  | Ops.Check p ->
      ( "check",
        Json.Obj
          ([
             ("arch", Json.Str p.c_arch.Gpusim.Arch.name);
             ("k1", json_of_kernel_src p.c_k1);
           ]
          @ (match p.c_k2 with
            | None -> []
            | Some k2 -> [ ("k2", json_of_kernel_src k2) ])
          @ [ ("grid", Json.Int p.c_grid) ]
          (* emitted only when set, so requests from older clients and
             their byte-exact recordings stay stable *)
          @ (if p.c_repair then [ ("repair", Json.Bool true) ] else [])) )
  | Ops.Simulate p ->
      ( "simulate",
        Json.Obj
          ([
             ("arch", Json.Str p.m_arch.Gpusim.Arch.name);
             ("kernel", Json.Str p.m_kernel.Kernel_corpus.Spec.name);
           ]
          @ (match p.m_size with None -> [] | Some n -> [ ("size", Json.Int n) ])
          @ [
              ("validate", Json.Bool p.m_validate);
              ("engine_stats", Json.Bool p.m_engine_stats);
            ]) )
  | Ops.Search p ->
      ( "search",
        Json.Obj
          ([
             ("arch", Json.Str p.s_arch.Gpusim.Arch.name);
             ("k1", Json.Str p.s_k1.Kernel_corpus.Spec.name);
             ("k2", Json.Str p.s_k2.Kernel_corpus.Spec.name);
           ]
          @ (match p.s_size1 with
            | None -> []
            | Some n -> [ ("size1", Json.Int n) ])
          @ (match p.s_size2 with
            | None -> []
            | Some n -> [ ("size2", Json.Int n) ])
          @ [ ("emit", Json.Bool p.s_emit); ("jobs", Json.Int p.s_jobs) ]
          @ (match p.s_top_k with
            | None -> []
            | Some k -> [ ("top_k", Json.Int k) ])
          @ (if p.s_repair then [ ("repair", Json.Bool true) ] else [])) )

let json_of_settings (sp : settings_spec) : (string * Json.t) list =
  let fields =
    (match sp.sp_trace_blocks with
    | None -> []
    | Some n -> [ ("trace_blocks", Json.Int n) ])
    @ (match sp.sp_sim_fuel with
      | None -> []
      | Some n -> [ ("sim_fuel", Json.Int n) ])
    @ (match sp.sp_trace_mem_mb with
      | None -> []
      | Some n -> [ ("trace_mem_mb", Json.Int n) ])
    @ (match sp.sp_cache_dir with
      | None -> []
      | Some None -> [ ("cache_dir", Json.Null) ]
      | Some (Some d) -> [ ("cache_dir", Json.Str d) ])
    @
    match sp.sp_fault with
    | None -> []
    | Some None -> [ ("fault", Json.Null) ]
    | Some (Some f) -> [ ("fault", Json.Str f) ]
  in
  match fields with [] -> [] | fs -> [ ("settings", Json.Obj fs) ]

let request_to_line (r : request) : string =
  let verb, params =
    match r.verb with
    | Ping -> ("ping", Json.Obj [])
    | Stats -> ("stats", Json.Obj [])
    | Work p -> json_of_params p
  in
  Json.to_line
    (Json.Obj
       ([ ("id", Json.Str r.id); ("verb", Json.Str verb) ]
       @ (if r.priority = 0 then [] else [ ("priority", Json.Int r.priority) ])
       @ json_of_settings r.settings
       @ match params with Json.Obj [] -> [] | p -> [ ("params", p) ]))

let response_to_line : response -> string = function
  | Result r ->
      Json.to_line
        (Json.Obj
           [
             ("id", Json.Str r.id);
             ("ok", Json.Bool true);
             ("exit_code", Json.Int r.exit_code);
             ("output", Json.Str r.output);
             ("log", Json.Str r.log);
             ("telemetry", r.telemetry);
           ])
  | Failure f ->
      Json.to_line
        (Json.Obj
           ((match f.id with None -> [] | Some id -> [ ("id", Json.Str id) ])
           @ [
               ("ok", Json.Bool false);
               ( "error",
                 Json.Obj
                   [
                     ("code", Json.Str f.code); ("message", Json.Str f.message);
                   ] );
             ]))

let parse_response (line : string) : (response, string) result =
  match Json.of_string line with
  | Error msg -> Error ("malformed response: " ^ msg)
  | Ok j -> (
      let id =
        match Json.member "id" j with Some (Json.Str s) -> Some s | _ -> None
      in
      match Json.member "ok" j with
      | Some (Json.Bool true) -> (
          match (id, Json.member "output" j, Json.member "log" j) with
          | Some id, Some (Json.Str output), Some (Json.Str log) ->
              Ok
                (Result
                   {
                     id;
                     exit_code =
                       (match Json.member "exit_code" j with
                       | Some (Json.Int n) -> n
                       | _ -> 0);
                     output;
                     log;
                     telemetry =
                       (match Json.member "telemetry" j with
                       | Some t -> t
                       | None -> Json.Obj []);
                   })
          | _ -> Error "malformed response: missing output/log")
      | Some (Json.Bool false) -> (
          match Json.member "error" j with
          | Some e ->
              Ok
                (Failure
                   {
                     id;
                     code =
                       (match Json.member "code" e with
                       | Some (Json.Str c) -> c
                       | _ -> "internal");
                     message =
                       (match Json.member "message" e with
                       | Some (Json.Str m) -> m
                       | _ -> "");
                   })
          | None -> Error "malformed response: missing error object")
      | _ -> Error "malformed response: missing ok field")

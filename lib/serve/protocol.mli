(** Newline-delimited JSON wire protocol for [hfuse serve].

    One request per line, one response per line.  Responses echo the
    request's [id] and may complete out of order — the daemon
    schedules work on a shared priority pool, so clients match
    responses to requests by id, not arrival order.

    Request shape:
    {v
    {"id":"r1","verb":"search","priority":5,
     "settings":{"trace_blocks":1,"cache_dir":null,"fault":"sim_hang:0.02,seed:7"},
     "params":{"arch":"1080Ti","k1":"Batchnorm","k2":"Hist","jobs":2}}
    v}

    Success response:
    [{"id":"r1","ok":true,"exit_code":0,"output":"…","log":"…","telemetry":{…}}]
    — [output] is byte-identical to the one-shot CLI's stdout, [log]
    to its stderr.

    Error response:
    [{"id":"r1","ok":false,"error":{"code":"invalid_request","message":"…"}}]. *)

module Json := Hfuse_profiler.Report.Json

(** Per-request settings overrides.  The outer option is "key present
    in the request"; for [cache_dir]/[fault] the inner option
    distinguishes an explicit null ("force off") from a value. *)
type settings_spec = {
  sp_trace_blocks : int option;
  sp_sim_fuel : int option;
  sp_trace_mem_mb : int option;
  sp_cache_dir : string option option;
  sp_fault : string option option;
      (** fault spec string ({!Hfuse_fault.Fault.to_spec} syntax) *)
}

val no_overrides : settings_spec

type verb = Work of Ops.request_params | Stats | Ping

type request = {
  id : string;
  priority : int;  (** higher runs first; default 0 *)
  settings : settings_spec;
  verb : verb;
}

type error_code =
  | Parse_error  (** the line is not valid JSON *)
  | Invalid_request  (** missing/ill-typed fields, unknown arch/kernel *)
  | Unknown_verb
  | Overloaded  (** admission control: the daemon's queue is full *)
  | Shutting_down
  | Internal  (** an exception escaped the verb body *)

val code_name : error_code -> string

type response =
  | Result of {
      id : string;
      exit_code : int;
      output : string;
      log : string;
      telemetry : Json.t;
    }
  | Failure of { id : string option; code : string; message : string }

val response_of_outcome : id:string -> Ops.outcome -> response
val failure : ?id:string -> error_code -> string -> response

(** Parse one request line.  Errors come back pre-shaped as the
    response to send, echoing the request id when one was readable. *)
val parse_request : string -> (request, response) result

(** Resolve a request's overrides into a concrete per-request settings
    record (env defaults fill the gaps).
    @raise Hfuse_fault.Fault.Invalid_spec on a malformed fault spec.
    @raise Invalid_argument on non-positive trace_blocks/sim_fuel. *)
val resolve_settings : settings_spec -> Hfuse_profiler.Settings.t

(** Capture an effective configuration for shipping with a routed
    request, so the daemon reproduces the one-shot behaviour exactly
    (the installed fault plan travels as {!Hfuse_fault.Fault.to_spec}). *)
val spec_of_settings : Hfuse_profiler.Settings.t -> settings_spec

val request_to_line : request -> string
val response_to_line : response -> string
val parse_response : string -> (response, string) result

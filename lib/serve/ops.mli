(** The verb engine shared by the one-shot CLI and the daemon.

    Each serving verb maps typed parameters to an {!outcome} whose
    [output] field is the byte-exact stdout the one-shot CLI prints —
    the daemon serialises the same record into a response, so answers
    from the two paths are bit-identical by construction.

    Daemon-safety contract: no function here calls [exit], writes to
    the process's std channels, or mutates global configuration.
    Request-scoped knobs arrive as an explicit
    {!Hfuse_profiler.Settings.t}; request-scoped counters leave in the
    [telemetry] field. *)

module Json := Hfuse_profiler.Report.Json

type outcome = {
  output : string;  (** deterministic stdout payload *)
  log : string;  (** stderr: diagnostics, wall-clock stats *)
  exit_code : int;
  telemetry : Json.t;  (** per-request counters (cache/pool/fault/…) *)
}

(** A kernel source shipped to the engine: the CLI reads the file, the
    daemon receives it inline.  [ks_path] only labels diagnostics. *)
type kernel_src = {
  ks_path : string;
  ks_source : string;
  ks_block : int;
  ks_smem : int;
  ks_regs : int option;  (** [None]: estimate from the AST *)
}

type fuse_params = { f_k1 : kernel_src; f_k2 : kernel_src; f_grid : int }

type check_params = {
  c_arch : Gpusim.Arch.t;
  c_k1 : kernel_src;
  c_k2 : kernel_src option;  (** [None]: single-kernel mode *)
  c_grid : int;
  c_repair : bool;
      (** on rejection, run the repair engine and report the repaired
          verdict.  Static-only: [check] has no workload to execute, so
          this previews the transformation without the differential
          soundness gate — admission paths ([search], the fleet) always
          gate *)
}

type simulate_params = {
  m_arch : Gpusim.Arch.t;
  m_kernel : Kernel_corpus.Spec.t;
  m_size : int option;  (** [None]: the spec's default size *)
  m_validate : bool;
  m_engine_stats : bool;
}

type search_params = {
  s_arch : Gpusim.Arch.t;
  s_k1 : Kernel_corpus.Spec.t;
  s_k2 : Kernel_corpus.Spec.t;
  s_size1 : int option;  (** [None]: representative size *)
  s_size2 : int option;
  s_emit : bool;
  s_jobs : int;
  s_top_k : int option;  (** [Some k]: analytical top-K pruning *)
  s_repair : bool;
      (** hand verifier-rejected partitions to the repair engine;
          repaired candidates are admitted only after the differential
          soundness oracle passes *)
}

type request_params =
  | Fuse of fuse_params
  | Check of check_params
  | Simulate of simulate_params
  | Search of search_params

val verb_name : request_params -> string

(** Tally-to-JSON helpers shared with the daemon's [stats] verb. *)
val json_of_pool_tally : Hfuse_parallel.Pool.tally -> Json.t

val json_of_fault_tally : Hfuse_fault.Fault.tally -> Json.t

val fuse : fuse_params -> outcome
val check : check_params -> outcome

(** [settings] defaults to {!Hfuse_profiler.Settings.current} — the
    CLI's environment capture.  The daemon always passes the resolved
    per-request record. *)
val simulate : ?settings:Hfuse_profiler.Settings.t -> simulate_params -> outcome

(** Runs the Fig. 6 search with a fresh per-request stats record and a
    cache handle derived from [settings]; [telemetry] carries the
    search/cache counters plus pool and fault tally deltas bracketing
    the request.  [checkpoint] (resume journalling) and [pool] (shared
    worker pool) are CLI/daemon concerns respectively and default off.
    @raise Sys.Break and simulator exceptions as the CLI path does. *)
val search :
  ?settings:Hfuse_profiler.Settings.t ->
  ?checkpoint:Hfuse_profiler.Checkpoint.t ->
  ?pool:Hfuse_parallel.Pool.t ->
  search_params ->
  outcome

val run :
  ?settings:Hfuse_profiler.Settings.t ->
  ?checkpoint:Hfuse_profiler.Checkpoint.t ->
  ?pool:Hfuse_parallel.Pool.t ->
  request_params ->
  outcome

(** Client side of the daemon protocol: connect to the Unix socket,
    ship one request line, read one response line.  Transport problems
    are [Error] strings — the caller decides whether to fail or fall
    back to the in-process path. *)

(** The [HFUSE_SERVER] socket path, if set: the CLI's routing switch. *)
val default_socket : unit -> string option

(** Raw line in, raw line out ([hfuse client]). *)
val roundtrip : socket:string -> string -> (string, string) result

(** Typed round trip: serialize, send, parse. *)
val call :
  socket:string -> Protocol.request -> (Protocol.response, string) result

(* Client side of the daemon protocol: connect, ship one request
   line, read one response line.

   The CLI routes its verbs here when HFUSE_SERVER names a socket; the
   `hfuse client` subcommand exposes the raw line protocol.  Transport
   problems come back as [Error] strings — the caller decides whether
   to fail or fall back to the in-process path. *)

let default_socket () = Sys.getenv_opt "HFUSE_SERVER"

let with_connection (socket : string) (f : in_channel -> out_channel -> 'a) :
    ('a, string) result =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with _ -> ());
          Error
            (Printf.sprintf "cannot reach server at %s: %s" socket
               (Unix.error_message e))
      | () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match f ic oc with
              | v -> Ok v
              | exception End_of_file ->
                  Error "server closed the connection"
              | exception Sys_error msg -> Error msg
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Unix.error_message e)))

(* [roundtrip ~socket line] sends one raw request line and returns the
   raw response line. *)
let roundtrip ~(socket : string) (line : string) : (string, string) result =
  with_connection socket (fun ic oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      input_line ic)

(* Typed round trip: serialize the request, parse the response. *)
let call ~(socket : string) (req : Protocol.request) :
    (Protocol.response, string) result =
  match roundtrip ~socket (Protocol.request_to_line req) with
  | Error _ as e -> e
  | Ok line -> Protocol.parse_response line

(* The `hfuse serve` daemon: a Unix-domain-socket server speaking the
   newline-delimited JSON protocol.

   Threading model: one accept loop (poll + stop flag, so shutdown is
   prompt), one lightweight reader thread per connection, and one
   shared {!Hfuse_parallel.Pool} of worker domains executing the verb
   bodies.  Reader threads only parse, answer the cheap verbs
   (ping/stats) inline, and hand work verbs to the pool with the
   request's priority; admission control answers [overloaded] without
   queueing when [queue_limit] requests are already waiting.  Each
   connection serialises its writes with a mutex, so responses from
   concurrent requests interleave only at line granularity.

   Fault containment: a malformed line, an unknown verb, a bad fault
   spec, or an exception escaping a verb body each cost exactly one
   error response — never the process.  SIGPIPE is ignored (a client
   hanging up mid-response must not kill the daemon). *)

module Json = Hfuse_profiler.Report.Json
module Report = Hfuse_profiler.Report
module Fault = Hfuse_fault.Fault
module Pool = Hfuse_parallel.Pool

type config = { socket_path : string; jobs : int; queue_limit : int }

let default_queue_limit = 64

(* newest-first ring of per-request telemetry for the stats verb *)
let recent_cap = 32

type recent = { r_id : string; r_verb : string; r_exit : int; r_telemetry : Json.t }

type t = {
  config : config;
  sock : Unix.file_descr;
  pool : Pool.t;
  stop : bool Atomic.t;
  m : Mutex.t;  (* guards everything below *)
  verbs : (string, int) Hashtbl.t;
  search_tally : (string, int) Hashtbl.t;
      (* cumulative sums of the flat integer leaves of every search
         request's "search" telemetry — the daemon-lifetime per-kind
         rejection histogram and repair counters the stats verb reports *)
  mutable total : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable recent : recent list;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let note_verb t verb =
  locked t (fun () ->
      t.total <- t.total + 1;
      Hashtbl.replace t.verbs verb
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.verbs verb)))

let note_error t = locked t (fun () -> t.errors <- t.errors + 1)

let note_overloaded t =
  locked t (fun () -> t.overloaded <- t.overloaded + 1)

let record t ~id ~verb (o : Ops.outcome) =
  locked t (fun () ->
      (match Json.member "search" o.Ops.telemetry with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (k, v) ->
              match v with
              | Json.Int n ->
                  Hashtbl.replace t.search_tally k
                    (n + Option.value ~default:0 (Hashtbl.find_opt t.search_tally k))
              | _ -> ())
            fields
      | _ -> ());
      let r =
        { r_id = id; r_verb = verb; r_exit = o.Ops.exit_code;
          r_telemetry = o.Ops.telemetry }
      in
      t.recent <-
        (r :: t.recent |> fun l ->
         List.filteri (fun i _ -> i < recent_cap) l))

(* ------------------------------------------------------------------ *)
(* stats verb                                                           *)
(* ------------------------------------------------------------------ *)

let stats_outcome t : Ops.outcome =
  let total, errors, overloaded, verbs, recent, search_sums =
    locked t (fun () ->
        ( t.total,
          t.errors,
          t.overloaded,
          List.map
            (fun v -> (v, Option.value ~default:0 (Hashtbl.find_opt t.verbs v)))
            [ "fuse"; "check"; "simulate"; "search"; "stats"; "ping" ],
          t.recent,
          Hashtbl.fold (fun k n acc -> (k, n) :: acc) t.search_tally []
          |> List.sort compare ))
  in
  let pending = Pool.pending_submits t.pool in
  let pool_tally = Pool.tally () in
  let fault_tally = Fault.tally () in
  let trace_tally = Hfuse_profiler.Trace_store.tally () in
  let engine = Gpusim.Timing.cumulative_stats () in
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "requests: total %d, errors %d, overloaded %d, pending %d\n" total
    errors overloaded pending;
  add "verbs: %s\n"
    (String.concat ", "
       (List.map (fun (v, n) -> Printf.sprintf "%s %d" v n) verbs));
  add "workers: %d (queue limit %d)\n" (Pool.size t.pool)
    t.config.queue_limit;
  add "pool: %s\n" (Fmt.str "%a" Pool.pp_tally pool_tally);
  add "fault: %s\n" (Fmt.str "%a" Fault.pp_tally fault_tally);
  add "trace store: %s (%d entr%s, %d bytes in memory)\n"
    (Fmt.str "%a" Hfuse_profiler.Trace_store.pp_tally trace_tally)
    (Hfuse_profiler.Trace_store.mem_entries ())
    (if Hfuse_profiler.Trace_store.mem_entries () = 1 then "y" else "ies")
    (Hfuse_profiler.Trace_store.mem_bytes ());
  add "engine: %s\n" (Fmt.str "%a" Gpusim.Timing.pp_engine_stats engine);
  (let interesting =
     List.filter
       (fun (k, n) ->
         n > 0
         && ((String.length k > 4 && String.sub k 0 4 = "rej_")
            || List.mem k [ "repair_attempted"; "repaired"; "repair_unsound" ]))
       search_sums
   in
   if interesting <> [] then
     add "search: %s\n"
       (String.concat ", "
          (List.map (fun (k, n) -> Printf.sprintf "%s %d" k n) interesting)));
  {
    Ops.output = Buffer.contents b;
    log = "";
    exit_code = 0;
    telemetry =
      Json.Obj
        [
          ("total", Json.Int total);
          ("errors", Json.Int errors);
          ("overloaded", Json.Int overloaded);
          ("pending", Json.Int pending);
          ("workers", Json.Int (Pool.size t.pool));
          ("verbs", Json.Obj (List.map (fun (v, n) -> (v, Json.Int n)) verbs));
          ("pool", Ops.json_of_pool_tally pool_tally);
          ( "search",
            Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) search_sums) );
          ("fault", Ops.json_of_fault_tally fault_tally);
          ("trace_store", Report.json_of_trace_tally trace_tally);
          ("engine", Report.json_of_engine_stats engine);
          ( "recent",
            Json.List
              (List.map
                 (fun r ->
                   Json.Obj
                     [
                       ("id", Json.Str r.r_id);
                       ("verb", Json.Str r.r_verb);
                       ("exit_code", Json.Int r.r_exit);
                       ("telemetry", r.r_telemetry);
                     ])
                 recent) );
        ];
  }

(* ------------------------------------------------------------------ *)
(* Request handling                                                     *)
(* ------------------------------------------------------------------ *)

let ping_outcome : Ops.outcome =
  { Ops.output = "pong\n"; log = ""; exit_code = 0; telemetry = Json.Obj [] }

let handle_line t (send : Protocol.response -> unit) (line : string) =
  match Protocol.parse_request line with
  | Error resp ->
      note_error t;
      send resp
  | Ok req -> (
      match req.Protocol.verb with
      | Protocol.Ping ->
          note_verb t "ping";
          send (Protocol.response_of_outcome ~id:req.Protocol.id ping_outcome)
      | Protocol.Stats ->
          note_verb t "stats";
          send
            (Protocol.response_of_outcome ~id:req.Protocol.id (stats_outcome t))
      | Protocol.Work params -> (
          let id = req.Protocol.id in
          match Protocol.resolve_settings req.Protocol.settings with
          | exception Fault.Invalid_spec msg ->
              note_error t;
              send (Protocol.failure ~id Protocol.Invalid_request msg)
          | exception Invalid_argument msg ->
              note_error t;
              send (Protocol.failure ~id Protocol.Invalid_request msg)
          | settings -> (
              let verb = Ops.verb_name params in
              let job () =
                let resp =
                  match Ops.run ~settings params with
                  | o ->
                      record t ~id ~verb o;
                      Protocol.response_of_outcome ~id o
                  | exception e ->
                      note_error t;
                      Protocol.failure ~id Protocol.Internal
                        (Printexc.to_string e)
                in
                send resp
              in
              match Pool.submit ~priority:req.Protocol.priority t.pool job with
              | `Queued -> note_verb t verb
              | `Overloaded ->
                  note_overloaded t;
                  send
                    (Protocol.failure ~id Protocol.Overloaded
                       "request queue is full; retry later")
              | `Shutdown ->
                  send
                    (Protocol.failure ~id Protocol.Shutting_down
                       "server is shutting down"))))

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let wm = Mutex.create () in
  let send resp =
    let line = Protocol.response_to_line resp in
    Mutex.lock wm;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock wm)
      (fun () ->
        (* the client may be gone (EPIPE/closed): its loss, not ours *)
        try
          output_string oc line;
          output_char oc '\n';
          flush oc
        with Sys_error _ | Unix.Unix_error _ -> ())
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line ->
        if String.trim line <> "" then handle_line t send line;
        loop ()
  in
  loop ();
  close_in_noerr ic

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                            *)
(* ------------------------------------------------------------------ *)

let bind_socket path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     try Unix.bind fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
       (* a socket file exists: probe whether a live daemon owns it *)
       let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       let alive =
         Fun.protect
           ~finally:(fun () -> try Unix.close probe with _ -> ())
           (fun () ->
             try
               Unix.connect probe (Unix.ADDR_UNIX path);
               true
             with Unix.Unix_error _ -> false)
       in
       if alive then failwith (path ^ ": a server is already listening");
       Unix.unlink path;
       Unix.bind fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.listen fd 64;
  fd

let create (config : config) : t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = bind_socket config.socket_path in
  let pool =
    Pool.create ~queue_limit:(max 1 config.queue_limit) (max 1 config.jobs)
  in
  {
    config;
    sock;
    pool;
    stop = Atomic.make false;
    m = Mutex.create ();
    verbs = Hashtbl.create 8;
    search_tally = Hashtbl.create 32;
    total = 0;
    errors = 0;
    overloaded = 0;
    recent = [];
    accept_thread = None;
  }

let request_stop t = Atomic.set t.stop true
let socket_path t = t.config.socket_path

let serve (t : t) : unit =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.sock with
        | fd, _ -> ignore (Thread.create (fun () -> handle_conn t fd) ())
        | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
  done;
  (* drain: running jobs complete and answer, queued jobs are dropped
     (their clients see the connection close), the socket file goes
     away so probes know the daemon is gone *)
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Pool.shutdown t.pool

let start (config : config) : t =
  let t = create config in
  t.accept_thread <- Some (Thread.create (fun () -> serve t) ());
  t

let stop (t : t) : unit =
  request_stop t;
  match t.accept_thread with None -> () | Some th -> Thread.join th

(* The verb engine shared by the one-shot CLI and the daemon.

   Every serving verb (fuse / check / simulate / search) is a pure-ish
   function from typed parameters to an {!outcome}: the deterministic
   stdout payload, the stderr log (diagnostics and wall-clock stats),
   an exit code, and structured telemetry.  The CLI prints the outcome
   and exits with its code; the daemon serialises it into a response —
   both paths run the exact same body, which is what makes the
   daemon's answers byte-identical to the one-shot CLI's stdout.

   Daemon-safety rules (DESIGN.md): nothing here calls [exit], writes
   to the process's std channels, or mutates hidden global
   configuration; per-request knobs arrive as an explicit
   {!Hfuse_profiler.Settings.t} and per-request counters leave in
   [telemetry]. *)

module Json = Hfuse_profiler.Report.Json
module Runner = Hfuse_profiler.Runner
module Settings = Hfuse_profiler.Settings
module Report = Hfuse_profiler.Report
module Checkpoint = Hfuse_profiler.Checkpoint
module Trace_store = Hfuse_profiler.Trace_store
module Fault = Hfuse_fault.Fault
module Pool = Hfuse_parallel.Pool

type outcome = {
  output : string;  (** deterministic stdout payload *)
  log : string;  (** stderr: diagnostics, wall-clock stats *)
  exit_code : int;
  telemetry : Json.t;  (** per-request counters (cache/pool/fault/…) *)
}

let fail ?(output = "") code log =
  { output; log; exit_code = code; telemetry = Json.Obj [] }

(* ------------------------------------------------------------------ *)
(* Parameters                                                           *)
(* ------------------------------------------------------------------ *)

(** A kernel source as shipped to the engine: the CLI reads the file,
    the daemon receives it inline ([ks_path] only labels diagnostics). *)
type kernel_src = {
  ks_path : string;
  ks_source : string;
  ks_block : int;
  ks_smem : int;
  ks_regs : int option;
}

type fuse_params = { f_k1 : kernel_src; f_k2 : kernel_src; f_grid : int }

type check_params = {
  c_arch : Gpusim.Arch.t;
  c_k1 : kernel_src;
  c_k2 : kernel_src option;
  c_grid : int;
  c_repair : bool;
      (** on rejection, run the repair engine and report the repaired
          verdict.  Static-only: [check] has no workload to execute, so
          this previews the transformation without the differential
          soundness gate — admission paths ([search], the fleet) always
          gate *)
}

type simulate_params = {
  m_arch : Gpusim.Arch.t;
  m_kernel : Kernel_corpus.Spec.t;
  m_size : int option;
  m_validate : bool;
  m_engine_stats : bool;
}

type search_params = {
  s_arch : Gpusim.Arch.t;
  s_k1 : Kernel_corpus.Spec.t;
  s_k2 : Kernel_corpus.Spec.t;
  s_size1 : int option;
  s_size2 : int option;
  s_emit : bool;
  s_jobs : int;
  s_top_k : int option;
  s_repair : bool;
      (** hand verifier-rejected partitions to the repair engine;
          repaired candidates are admitted only after the differential
          soundness oracle passes *)
}

type request_params =
  | Fuse of fuse_params
  | Check of check_params
  | Simulate of simulate_params
  | Search of search_params

let verb_name = function
  | Fuse _ -> "fuse"
  | Check _ -> "check"
  | Simulate _ -> "simulate"
  | Search _ -> "search"

(* ------------------------------------------------------------------ *)
(* Source-to-kernel front end (mirrors the CLI's file path)             *)
(* ------------------------------------------------------------------ *)

let info_of_src (k : kernel_src) ~(grid : int) :
    (Hfuse_core.Kernel_info.t, string) result =
  match Cuda.Parser.parse_kernel k.ks_source with
  | exception Cuda.Parser.Error (msg, loc) ->
      Error (Fmt.str "%s:%a: %s" k.ks_path Cuda.Loc.pp loc msg)
  | exception Cuda.Lexer.Error (msg, loc) ->
      Error (Fmt.str "%s:%a: %s" k.ks_path Cuda.Loc.pp loc msg)
  | exception Failure msg -> Error (k.ks_path ^ ": " ^ msg)
  | prog, fn -> (
      match Cuda.Typecheck.check_program prog with
      | exception Cuda.Typecheck.Error (msg, loc) ->
          Error
            (Fmt.str "%s:%s: %s" k.ks_path (Cuda.Loc.to_string loc) msg)
      | () ->
          let regs =
            match k.ks_regs with
            | Some r -> r
            | None -> Gpusim.Resource_model.estimate_fn fn
          in
          Ok
            {
              Hfuse_core.Kernel_info.fn;
              prog;
              block = (k.ks_block, 1, 1);
              grid;
              smem_dynamic = k.ks_smem;
              regs;
              tunability = Hfuse_core.Kernel_info.Fixed;
            })

(* ------------------------------------------------------------------ *)
(* Telemetry helpers                                                    *)
(* ------------------------------------------------------------------ *)

let json_of_pool_tally (t : Pool.tally) : Json.t =
  Json.Obj
    [
      ("failures", Json.Int t.failures);
      ("retries", Json.Int t.retries);
      ("recovered", Json.Int t.recovered);
    ]

let json_of_fault_tally (t : Fault.tally) : Json.t =
  let kinds l =
    Json.Obj (List.map (fun (k, n) -> (Fault.kind_name k, Json.Int n)) l)
  in
  Json.Obj [ ("injected", kinds t.injected); ("recovered", kinds t.recovered) ]

(* ------------------------------------------------------------------ *)
(* fuse                                                                 *)
(* ------------------------------------------------------------------ *)

let fuse (p : fuse_params) : outcome =
  match
    (info_of_src p.f_k1 ~grid:p.f_grid, info_of_src p.f_k2 ~grid:p.f_grid)
  with
  | Error e, _ | _, Error e -> fail 1 ("hfuse: " ^ e ^ "\n")
  | Ok k1, Ok k2 -> (
      match Hfuse_core.Hfuse.generate k1 k2 with
      | fused ->
          {
            output = Hfuse_core.Hfuse.to_source fused ^ "\n";
            log =
              Printf.sprintf
                "// fused: %d+%d threads, barriers %d/%d, ~%d regs, %dB \
                 dynamic smem\n"
                fused.d1 fused.d2 fused.bar1 fused.bar2 fused.regs
                fused.smem_dynamic;
            exit_code = 0;
            telemetry = Json.Obj [];
          }
      | exception Hfuse_core.Fuse_common.Fusion_error msg ->
          fail 1 ("hfuse: " ^ msg ^ "\n")
      | exception Hfuse_analysis.Diag.Unsafe_fusion ds ->
          fail 1
            ("hfuse: unsafe fusion\n" ^ Hfuse_analysis.Diag.report_to_string ds))

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

(* [check --repair] rendering: the original (rejecting) report, one
   [repair[tag]: detail] line per applied transformation, then the
   re-verified report of the repaired kernel.  Static-only by design —
   [check] has no workload to run the differential oracle against, so
   the exit code says "statically repairable", not "sound". *)
let check_repaired (b : Buffer.t)
    (r : (Hfuse_repair.Repair.action list * Hfuse_analysis.Diag.t list,
          Hfuse_repair.Repair.failure)
         result) : outcome =
  match r with
  | Ok (actions, residual) ->
      List.iter
        (fun (a : Hfuse_repair.Repair.action) ->
          Buffer.add_string b
            (Printf.sprintf "repair[%s]: %s\n" a.a_tag a.a_detail))
        actions;
      Buffer.add_string b (Hfuse_analysis.Diag.report_to_string residual);
      {
        output = Buffer.contents b;
        log = "";
        exit_code = 0;
        telemetry = Json.Obj [];
      }
  | Error f ->
      Buffer.add_string b
        (Fmt.str "repair: %a\n" Hfuse_repair.Repair.pp_failure f);
      {
        output = Buffer.contents b;
        log = "";
        exit_code = 1;
        telemetry = Json.Obj [];
      }

let check (p : check_params) : outcome =
  let limits = Gpusim.Arch.sm_limits p.c_arch in
  let report diags =
    {
      output = Hfuse_analysis.Diag.report_to_string diags;
      log = "";
      exit_code = (if Hfuse_analysis.Diag.is_clean diags then 0 else 1);
      telemetry = Json.Obj [];
    }
  in
  match p.c_k2 with
  | None -> (
      (* single-kernel mode: verify the file as-is (it may already
         contain bar.sync barriers from an earlier fusion) *)
      match info_of_src p.c_k1 ~grid:p.c_grid with
      | Error e -> fail 1 ("hfuse: " ^ e ^ "\n")
      | Ok k ->
          let body =
            (Hfuse_frontend.Inline.normalize_kernel k.prog k.fn).f_body
          in
          let threads = Hfuse_core.Kernel_info.threads_per_block k in
          let diags =
            Hfuse_analysis.Verifier.verify_kernel ~limits
              ~label:k.fn.Cuda.Ast.f_name ~threads ~regs:k.regs
              ~smem_dynamic:k.smem_dynamic body
          in
          if Hfuse_analysis.Diag.is_clean diags || not p.c_repair then
            report diags
          else begin
            let b = Buffer.create 512 in
            Buffer.add_string b (Hfuse_analysis.Diag.report_to_string diags);
            let side =
              Hfuse_analysis.Verifier.side ~label:k.fn.Cuda.Ast.f_name
                ~count:threads body
            in
            check_repaired b
              (Result.map
                 (fun (r : Hfuse_repair.Repair.sides_repaired) ->
                   (r.r_actions, r.r_residual))
                 (Hfuse_repair.Repair.repair_sides ~limits ~threads
                    ~regs:k.regs ~smem_dynamic:k.smem_dynamic [ side ]))
          end)
  | Some k2 -> (
      (* pair mode: fuse (verifier disabled) and report on the
         result, instead of dying on the first error *)
      match
        (info_of_src p.c_k1 ~grid:p.c_grid, info_of_src k2 ~grid:p.c_grid)
      with
      | Error e, _ | _, Error e -> fail 1 ("hfuse: " ^ e ^ "\n")
      | Ok k1, Ok k2 -> (
          match Hfuse_core.Hfuse.generate ~check:false ~limits k1 k2 with
          | exception Hfuse_core.Fuse_common.Fusion_error msg ->
              fail 1 ("hfuse: " ^ msg ^ "\n")
          | fused ->
              let diags = Hfuse_core.Hfuse.verify ~limits fused in
              if Hfuse_analysis.Diag.is_clean diags || not p.c_repair then
                report diags
              else begin
                let b = Buffer.create 512 in
                Buffer.add_string b
                  (Hfuse_analysis.Diag.report_to_string diags);
                check_repaired b
                  (Result.map
                     (fun (r : Hfuse_repair.Repair.repaired) ->
                       (r.actions, r.residual))
                     (Hfuse_repair.Repair.attempt ~limits k1 k2))
              end))

(* ------------------------------------------------------------------ *)
(* simulate                                                             *)
(* ------------------------------------------------------------------ *)

let simulate ?settings (p : simulate_params) : outcome =
  let s = match settings with Some s -> s | None -> Settings.current () in
  let spec = p.m_kernel in
  let size = Option.value p.m_size ~default:spec.default_size in
  let mem = Gpusim.Memory.create () in
  let c = Runner.configure mem spec ~size in
  let specs = [ Runner.spec_of ~settings:s c ~stream:0 () ] in
  let r, es = Gpusim.Timing.run_with_stats p.m_arch specs in
  let b = Buffer.create 512 in
  Buffer.add_string b (Gpusim.Metrics.header ^ "\n");
  Buffer.add_string b
    (Gpusim.Metrics.row (Gpusim.Metrics.of_report ~label:spec.name r) ^ "\n");
  if p.m_engine_stats then
    Buffer.add_string b
      (Printf.sprintf "engine: %s\n"
         (Fmt.str "%a" Gpusim.Timing.pp_engine_stats es));
  let telemetry = Json.Obj [ ("engine", Report.json_of_engine_stats es) ] in
  if not p.m_validate then
    { output = Buffer.contents b; log = ""; exit_code = 0; telemetry }
  else begin
    let mem2 = Gpusim.Memory.create () in
    let inst = spec.instantiate mem2 ~size in
    let info = Kernel_corpus.Spec.kernel_info spec inst in
    ignore
      (Gpusim.Launch.launch_info ?fault:s.Settings.fault
         ~loop_fuel:s.Settings.sim_fuel mem2 info ~args:inst.args
         ~trace_blocks:0);
    match inst.check mem2 with
    | Ok () ->
        Buffer.add_string b "outputs match the host reference\n";
        { output = Buffer.contents b; log = ""; exit_code = 0; telemetry }
    | Error e ->
        {
          output = Buffer.contents b;
          log = "validation failed: " ^ e ^ "\n";
          exit_code = 1;
          telemetry;
        }
  end

(* ------------------------------------------------------------------ *)
(* search                                                               *)
(* ------------------------------------------------------------------ *)

let reg_bound_str = function
  | None -> "unbounded"
  | Some r -> Printf.sprintf "r0=%d" r

let search ?settings ?(checkpoint = Checkpoint.disabled) ?pool
    (p : search_params) : outcome =
  let s = match settings with Some s -> s | None -> Settings.current () in
  let arch = p.s_arch in
  (* the representative-size probe simulates all nine paper kernels; a
     request that pins both sizes (the fleet driver always does) must
     not pay for it *)
  let sizes = lazy (Hfuse_profiler.Experiment.representative_sizes arch) in
  let size_of (spec : Kernel_corpus.Spec.t) o =
    match o with
    | Some s -> s
    | None -> Hfuse_profiler.Experiment.size_of (Lazy.force sizes) spec
  in
  let size1 = size_of p.s_k1 p.s_size1 and size2 = size_of p.s_k2 p.s_size2 in
  (* per-request counters: a fresh stats record, a fresh cache handle,
     and tally snapshots bracketing the whole verb (native baseline
     included, so a one-shot process's delta equals its cumulative
     tally) — nothing global is reset, so concurrent requests cannot
     clobber each other *)
  let stats = Runner.fresh_search_stats () in
  let cache = Settings.cache s in
  let fault_before = Fault.tally () in
  let pool_before = Pool.tally () in
  let trace_before = Trace_store.tally () in
  let mem = Gpusim.Memory.create () in
  let c1 = Runner.configure mem p.s_k1 ~size:size1 in
  let c2 = Runner.configure mem p.s_k2 ~size:size2 in
  let native = (Runner.native ~settings:s arch c1 c2).Gpusim.Timing.time_ms in
  let sr =
    Runner.search ~jobs:p.s_jobs ?pool ~settings:s ~stats ~cache ~checkpoint
      ?top_k:p.s_top_k ~repair:p.s_repair arch c1 c2
  in
  let fault_delta = Fault.diff ~before:fault_before ~after:(Fault.tally ()) in
  let pool_delta = Pool.diff ~before:pool_before ~after:(Pool.tally ()) in
  let trace_delta =
    Trace_store.diff ~before:trace_before ~after:(Trace_store.tally ())
  in
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "native: %.4f ms\n" native;
  let scores =
    match sr.scores with
    | [] -> List.map (fun _ -> None) sr.all
    | ss -> List.map Option.some ss
  in
  List.iter2
    (fun (cand : Hfuse_core.Search.candidate) score ->
      add "%5d/%-5d %-9s %.4f ms (%+.1f%%)%s%s\n" cand.fused.d1 cand.fused.d2
        (reg_bound_str cand.config.reg_bound)
        cand.time
        (100.0 *. ((native /. cand.time) -. 1.0))
        (match score with
        | None -> ""
        | Some sc -> Printf.sprintf "  [model %.4g]" sc)
        (if cand.repaired then "  [repaired]" else ""))
    sr.all scores;
  List.iter
    (fun ((f : Hfuse_core.Hfuse.t), (cfg : Hfuse_core.Search.config), score) ->
      add "%5d/%-5d %-9s pruned (model score %.4g)\n" f.d1 f.d2
        (reg_bound_str cfg.reg_bound)
        score)
    sr.pruned;
  let best = sr.best in
  add "best: %d/%d %s\n" best.fused.d1 best.fused.d2
    (reg_bound_str best.config.reg_bound);
  (* deterministic repair summary (only under --repair, so the default
     output stays byte-identical): "newly fusable" flags a pair whose
     every candidate came through repair — without it the search would
     have rejected every partition and raised *)
  if p.s_repair then
    add "repaired: %d partition(s), rejected: %d%s\n" sr.repaired
      (List.length sr.rejected)
      (if sr.admitted = 0 && sr.repaired > 0 then ", newly fusable" else "");
  if p.s_emit then add "%s\n" (Hfuse_core.Hfuse.to_source best.fused);
  let lb = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string lb) "search: %s\n"
    (Fmt.str "%a" Runner.pp_search_stats stats);
  Printf.ksprintf (Buffer.add_string lb) "trace store: %s\n"
    (Fmt.str "%a" Trace_store.pp_tally trace_delta);
  if s.Settings.fault <> None then
    Printf.ksprintf (Buffer.add_string lb) "fault: %s\n"
      (Fmt.str "%a" Fault.pp_tally fault_delta);
  {
    output = Buffer.contents b;
    log = Buffer.contents lb;
    exit_code = 0;
    telemetry =
      Json.Obj
        [
          ("search", Report.json_of_search_stats stats);
          ("cache", Report.json_of_cache cache);
          ("trace_store", Report.json_of_trace_tally trace_delta);
          ("pool", json_of_pool_tally pool_delta);
          ("fault", json_of_fault_tally fault_delta);
        ];
  }

(* ------------------------------------------------------------------ *)
(* Dispatch                                                             *)
(* ------------------------------------------------------------------ *)

let run ?settings ?checkpoint ?pool (p : request_params) : outcome =
  match p with
  | Fuse p -> fuse p
  | Check p -> check p
  | Simulate p -> simulate ?settings p
  | Search p -> search ?settings ?checkpoint ?pool p

(* Blur3 — 3x3 box blur with clamped borders, the smoothing stage of the
   classic image-processing pipelines (cvGPUSpeedup benchmarks a batched
   variant).  Nine clamped window loads pipeline ahead of a chain of
   adds — heavier per-thread address arithmetic than Resize/MulAdd, so
   it holds more registers live. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void blur3(float* out, float* in, float scale,
                      int height, int width, int total) {
  for (int index = blockIdx.x * blockDim.x + threadIdx.x; index < total;
       index += blockDim.x * gridDim.x) {
    int x = index % width;
    int y = index / width;
    int x0 = max(x - 1, 0);
    int x2 = min(x + 1, width - 1);
    int y0 = max(y - 1, 0);
    int y2 = min(y + 1, height - 1);
    float s = in[y0 * width + x0] + in[y0 * width + x] + in[y0 * width + x2]
            + in[y * width + x0] + in[y * width + x] + in[y * width + x2]
            + in[y2 * width + x0] + in[y2 * width + x] + in[y2 * width + x2];
    out[index] = s * scale;
  }
}
|}

let scale = 1.0 /. 9.0

let geometry ~size =
  let height = 16 and width = 16 * max 1 size in
  (height, width)

let host_reference ~input ~geometry:(h, w) : float array =
  let sc = Value.f32 scale in
  Array.init (h * w) (fun index ->
      let x = index mod w and y = index / w in
      let x0 = max (x - 1) 0 and x2 = min (x + 1) (w - 1) in
      let y0 = max (y - 1) 0 and y2 = min (y + 1) (h - 1) in
      (* mirror the device's left-associated fp32 adds *)
      let s = ref input.((y0 * w) + x0) in
      List.iter
        (fun v -> s := Value.f32 (!s +. v))
        [
          input.((y0 * w) + x); input.((y0 * w) + x2); input.((y * w) + x0);
          input.((y * w) + x); input.((y * w) + x2); input.((y2 * w) + x0);
          input.((y2 * w) + x); input.((y2 * w) + x2);
        ];
      Value.f32 (!s *. sc))

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((h, w) as geo) = geometry ~size in
  let total = h * w in
  let rng = Prng.create (0x424C + size) in
  let input_data = Prng.float_array rng total ~lo:(-4.0) ~hi:4.0 in
  let input =
    Memory.alloc mem ~name:"blur3.input" ~elem:Ctype.Float ~count:total
  in
  Memory.fill_floats mem input input_data;
  let out = Memory.alloc mem ~name:"blur3.out" ~elem:Ctype.Float ~count:total in
  let expect = host_reference ~input:input_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr out; Value.Ptr input; Workload.fv scale; Workload.iv h;
        Workload.iv w; Workload.iv total;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("blur3.out", out, total) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"blur3.out" ~expect
          (Memory.read_floats mem out total));
  }

let spec : Spec.t =
  {
    Spec.name = "Blur3";
    kind = Spec.Image;
    source;
    regs = 24;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 8;
    instantiate;
  }

(* Resize — 2x area-interpolated downscale (what cv::resize INTER_AREA
   computes for an exact halving): each output pixel averages its 2x2
   source window.  The first stage of cvGPUSpeedup's resize/mulAdd image
   pipelines.  Four strided loads and one store per thread; like the
   other image kernels it is throughput-bound on the memory system. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void resize(float* out, float* in, float scale,
                       int owidth, int iwidth, int total) {
  for (int index = blockIdx.x * blockDim.x + threadIdx.x; index < total;
       index += blockDim.x * gridDim.x) {
    int ox = index % owidth;
    int oy = index / owidth;
    int base = (oy * 2) * iwidth + (ox * 2);
    float s = in[base] + in[base + 1] + in[base + iwidth]
            + in[base + iwidth + 1];
    out[index] = s * scale;
  }
}
|}

let scale = 0.25

(* Input image iheight x iwidth, output exactly halved; [size] scales
   the width. *)
let geometry ~size =
  let iheight = 16 and iwidth = 32 * max 1 size in
  (iheight, iwidth, iheight / 2, iwidth / 2)

let host_reference ~input ~geometry:(_, iw, oh, ow) : float array =
  let sc = Value.f32 scale in
  Array.init (oh * ow) (fun index ->
      let ox = index mod ow and oy = index / ow in
      let base = (oy * 2 * iw) + (ox * 2) in
      (* mirror the device's left-associated fp32 adds *)
      let s = Value.f32 (input.(base) +. input.(base + 1)) in
      let s = Value.f32 (s +. input.(base + iw)) in
      let s = Value.f32 (s +. input.(base + iw + 1)) in
      Value.f32 (s *. sc))

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let ((ih, iw, oh, ow) as geo) = geometry ~size in
  let total_in = ih * iw and total_out = oh * ow in
  let rng = Prng.create (0x5253 + size) in
  let input_data = Prng.float_array rng total_in ~lo:(-4.0) ~hi:4.0 in
  let input =
    Memory.alloc mem ~name:"resize.input" ~elem:Ctype.Float ~count:total_in
  in
  Memory.fill_floats mem input input_data;
  let out =
    Memory.alloc mem ~name:"resize.out" ~elem:Ctype.Float ~count:total_out
  in
  let expect = host_reference ~input:input_data ~geometry:geo in
  {
    Workload.args =
      [
        Value.Ptr out; Value.Ptr input; Workload.fv scale; Workload.iv ow;
        Workload.iv iw; Workload.iv total_out;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("resize.out", out, total_out) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"resize.out" ~expect
          (Memory.read_floats mem out total_out));
  }

let spec : Spec.t =
  {
    Spec.name = "Resize";
    kind = Spec.Image;
    source;
    regs = 18;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 8;
    instantiate;
  }

(** The benchmark corpus: the paper's 5 deep-learning + 4 crypto kernels
    and the 10 + 6 evaluation pairs formed from them (Section IV-A),
    plus the fleet corpus's image/reduction extensions. *)

val all : Spec.t list
(** Exactly the paper's nine kernels — the figure suite and the
    profiler's representative-size probe iterate this list, so it never
    grows.  The wider corpus is {!extended}. *)

val deep_learning : Spec.t list
val crypto : Spec.t list

val image : Spec.t list
(** Image-processing patterns: Resize, MulAdd, Blur3, Rgb2gray. *)

val reduction : Spec.t list
(** Segmented reductions: Segsum, Segmax. *)

val extended : Spec.t list
(** [all @ image @ reduction] — every hand-written corpus kernel. *)

val register_extra : Spec.t -> unit
(** Publish a runtime-built spec (the fleet's curated generated
    kernels) so {!find} resolves it by name.  Re-registering a name
    replaces the earlier spec. *)

(** Case-insensitive lookup over [extended] and the registered extras. *)
val find : string -> Spec.t option

(** @raise Invalid_argument with the known names on a miss. *)
val find_exn : string -> Spec.t

val pairs_of : Spec.t list -> (Spec.t * Spec.t) list
val dl_pairs : (Spec.t * Spec.t) list
val crypto_pairs : (Spec.t * Spec.t) list
val all_pairs : (Spec.t * Spec.t) list

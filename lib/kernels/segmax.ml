(* Segmax — segmented max with the same block-per-segment shared-memory
   tree as Segsum, but reducing with fmaxf.  Max is exact in fp32
   regardless of association, so the host reference is a plain fold —
   the pair (Segsum, Segmax) gives the corpus a both-sides-extern-shared
   fusion, which no paper pair exercises. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void segmax(float* out, float* in, float lo,
                       int nseg, int seglen) {
  extern __shared__ unsigned char segmax_smem[];
  float* sm = (float*)segmax_smem;
  for (int s = blockIdx.x; s < nseg; s += gridDim.x) {
    float acc = lo;
    for (int i = threadIdx.x; i < seglen; i += blockDim.x) {
      acc = fmaxf(acc, in[s * seglen + i]);
    }
    sm[threadIdx.x] = acc;
    __syncthreads();
    for (int off = blockDim.x / 2; off > 0; off = off / 2) {
      if (threadIdx.x < off) {
        sm[threadIdx.x] = fmaxf(sm[threadIdx.x], sm[threadIdx.x + off]);
      }
      __syncthreads();
    }
    if (threadIdx.x == 0) { out[s] = sm[0]; }
    __syncthreads();
  }
}
|}

let block_threads = 256
let seglen = 256
let lo = -1e30
let geometry ~size = 48 * max 1 size

let host_reference ~input ~nseg : float array =
  Array.init nseg (fun s ->
      let m = ref (Value.f32 lo) in
      for i = 0 to seglen - 1 do
        let v = input.((s * seglen) + i) in
        if v > !m then m := v
      done;
      !m)

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let nseg = geometry ~size in
  let total = nseg * seglen in
  let rng = Prng.create (0x534D + size) in
  let input_data = Prng.float_array rng total ~lo:(-4.0) ~hi:4.0 in
  let input =
    Memory.alloc mem ~name:"segmax.input" ~elem:Ctype.Float ~count:total
  in
  Memory.fill_floats mem input input_data;
  let out = Memory.alloc mem ~name:"segmax.out" ~elem:Ctype.Float ~count:nseg in
  let expect = host_reference ~input:input_data ~nseg in
  {
    Workload.args =
      [
        Value.Ptr out; Value.Ptr input; Workload.fv lo; Workload.iv nseg;
        Workload.iv seglen;
      ];
    grid = Workload.default_grid;
    smem_dynamic = block_threads * 4;
    outputs = [ ("segmax.out", out, nseg) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"segmax.out" ~expect
          (Memory.read_floats mem out nseg));
  }

let spec : Spec.t =
  {
    Spec.name = "Segmax";
    kind = Spec.Reduction;
    source;
    regs = 20;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 4;
    instantiate;
  }

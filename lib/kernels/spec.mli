(** Common shape of a corpus kernel: CUDA source, calibration data, and
    a workload factory. *)

type kind =
  | Deep_learning  (** the paper's 5 DL kernels *)
  | Crypto  (** the paper's 4 crypto kernels *)
  | Image  (** image-processing patterns (resize/mulAdd/blur chains) *)
  | Reduction  (** segmented reductions *)
  | Generated  (** curated fuzzer-generated kernels (fleet corpus) *)

type t = {
  name : string;
  kind : kind;
  source : string;  (** CUDA source (exactly one [__global__]) *)
  regs : int;
      (** per-thread register calibration, in the range nvcc reports for
          the corresponding real kernel (cross-checked against the
          paper's Fig. 8 occupancies) *)
  native_block : int * int * int;
  tunability : Hfuse_core.Kernel_info.tunability;
  default_size : int;  (** representative workload size *)
  instantiate : Gpusim.Memory.t -> size:int -> Workload.instance;
}

val parse : t -> Cuda.Ast.program * Cuda.Ast.fn

(** The kernel as configured for a given workload instance. *)
val kernel_info : t -> Workload.instance -> Hfuse_core.Kernel_info.t

val pp_kind : kind Fmt.t

(* Common shape of a corpus kernel: CUDA source, calibration data, and a
   workload factory. *)

open Gpusim

type kind = Deep_learning | Crypto | Image | Reduction | Generated

type t = {
  name : string;
  kind : kind;
  source : string;  (** CUDA source of the kernel (one __global__) *)
  regs : int;
      (** per-thread register calibration, in the range nvcc reports for
          the corresponding real kernel *)
  native_block : int * int * int;
  tunability : Hfuse_core.Kernel_info.tunability;
  default_size : int;  (** representative workload size (Section IV-A) *)
  instantiate : Memory.t -> size:int -> Workload.instance;
      (** allocate inputs/outputs and return launch arguments + checker *)
}

let parse (t : t) : Cuda.Ast.program * Cuda.Ast.fn =
  Cuda.Parser.parse_kernel t.source

(** Build the {!Hfuse_core.Kernel_info.t} for this kernel at a given
    workload instance. *)
let kernel_info (t : t) (inst : Workload.instance) : Hfuse_core.Kernel_info.t
    =
  let prog, fn = parse t in
  {
    Hfuse_core.Kernel_info.fn;
    prog;
    block = t.native_block;
    grid = inst.Workload.grid;
    smem_dynamic = inst.Workload.smem_dynamic;
    regs = t.regs;
    tunability = t.tunability;
  }

let pp_kind ppf = function
  | Deep_learning -> Fmt.string ppf "deep-learning"
  | Crypto -> Fmt.string ppf "crypto"
  | Image -> Fmt.string ppf "image"
  | Reduction -> Fmt.string ppf "reduction"
  | Generated -> Fmt.string ppf "generated"

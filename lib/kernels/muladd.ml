(* MulAdd — per-pixel weighted multiply-add of two images,
   [out = a*alpha + b*beta + gamma], the cv::addWeighted / mulAdd stage
   of cvGPUSpeedup's image pipelines.  Pure streaming: two coalesced
   loads, three FMAs, one store per element — the memory-bound regime
   where horizontal fusion pays by overlapping another kernel's compute
   with the stalls. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void muladd(float* out, float* a, float* b,
                       float alpha, float beta, float gamma, int total) {
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
       i += blockDim.x * gridDim.x) {
    out[i] = a[i] * alpha + b[i] * beta + gamma;
  }
}
|}

let alpha = 1.5
let beta = 0.25
let gamma = -0.75
let geometry ~size = 3072 * max 1 size

let host_reference ~a ~b : float array =
  let al = Value.f32 alpha and be = Value.f32 beta and ga = Value.f32 gamma in
  Array.init (Array.length a) (fun i ->
      (* mirror the device's fp32 rounding at every step *)
      let ta = Value.f32 (a.(i) *. al) in
      let tb = Value.f32 (b.(i) *. be) in
      Value.f32 (Value.f32 (ta +. tb) +. ga))

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let total = geometry ~size in
  let rng = Prng.create (0x4D41 + size) in
  let a_data = Prng.float_array rng total ~lo:(-4.0) ~hi:4.0 in
  let b_data = Prng.float_array rng total ~lo:(-4.0) ~hi:4.0 in
  let a = Memory.alloc mem ~name:"muladd.a" ~elem:Ctype.Float ~count:total in
  Memory.fill_floats mem a a_data;
  let b = Memory.alloc mem ~name:"muladd.b" ~elem:Ctype.Float ~count:total in
  Memory.fill_floats mem b b_data;
  let out =
    Memory.alloc mem ~name:"muladd.out" ~elem:Ctype.Float ~count:total
  in
  let expect = host_reference ~a:a_data ~b:b_data in
  {
    Workload.args =
      [
        Value.Ptr out; Value.Ptr a; Value.Ptr b; Workload.fv alpha;
        Workload.fv beta; Workload.fv gamma; Workload.iv total;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("muladd.out", out, total) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"muladd.out" ~expect
          (Memory.read_floats mem out total));
  }

let spec : Spec.t =
  {
    Spec.name = "MulAdd";
    kind = Spec.Image;
    source;
    regs = 16;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 8;
    instantiate;
  }

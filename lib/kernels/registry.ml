(* The benchmark corpus: the paper's 5 deep-learning + 4 crypto kernels
   (Section IV-A), and the 10 + 6 benchmark pairs formed from them.
   Beyond the paper set, [extended] adds the image-processing and
   segmented-reduction kernels of the fleet corpus, and [register_extra]
   lets callers (the fleet's curated fuzzer corpus) publish further
   specs so name-based resolution — the CLI, the daemon protocol —
   sees them. *)

let all : Spec.t list =
  [
    Maxpool.spec;
    Batchnorm.spec;
    Upsample.spec;
    Im2col.spec;
    Hist.spec;
    Ethash.spec;
    Sha256.spec;
    Blake256.spec;
    Blake2b.spec;
  ]

let deep_learning =
  List.filter (fun (s : Spec.t) -> s.kind = Spec.Deep_learning) all

let crypto = List.filter (fun (s : Spec.t) -> s.kind = Spec.Crypto) all
let image : Spec.t list = [ Resize.spec; Muladd.spec; Blur3.spec; Rgb2gray.spec ]
let reduction : Spec.t list = [ Segsum.spec; Segmax.spec ]

(* [all] must stay exactly the paper's nine: the profiler's
   representative-size probe and every committed figure baseline iterate
   it. The wider corpus lives here. *)
let extended = all @ image @ reduction

(* Specs published at runtime (fleet's curated generated kernels), most
   recent registration first so re-registration shadows. *)
let extras : Spec.t list ref = ref []

let register_extra (s : Spec.t) =
  extras :=
    s
    :: List.filter
         (fun (e : Spec.t) ->
           String.lowercase_ascii e.name <> String.lowercase_ascii s.name)
         !extras

let find (name : string) : Spec.t option =
  List.find_opt
    (fun (s : Spec.t) ->
      String.lowercase_ascii s.name = String.lowercase_ascii name)
    (extended @ !extras)

let find_exn name =
  match find name with
  | Some s -> s
  | None ->
      invalid_arg
        (Fmt.str "unknown kernel %s (known: %a)" name
           Fmt.(list ~sep:comma string)
           (List.map (fun (s : Spec.t) -> s.name) (extended @ !extras)))

(** All unordered pairs within a kind — the 10 deep-learning and 6 crypto
    benchmark pairs of the evaluation. *)
let pairs_of (specs : Spec.t list) : (Spec.t * Spec.t) list =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go specs

let dl_pairs = pairs_of deep_learning
let crypto_pairs = pairs_of crypto
let all_pairs = dl_pairs @ crypto_pairs

(* Rgb2gray — planar RGB to luminance (the BT.601 weighted sum), the
   colour-conversion stage that opens most image pipelines.  Three
   coalesced loads feeding two FMAs per pixel; bandwidth-bound like
   Resize and MulAdd but with triple the read traffic per store. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void rgb2gray(float* gray, float* r, float* g, float* b,
                         float wr, float wg, float wb, int total) {
  for (int i = blockIdx.x * blockDim.x + threadIdx.x; i < total;
       i += blockDim.x * gridDim.x) {
    gray[i] = r[i] * wr + g[i] * wg + b[i] * wb;
  }
}
|}

let wr = 0.299
let wg = 0.587
let wb = 0.114
let geometry ~size = 3072 * max 1 size

let host_reference ~r ~g ~b : float array =
  let fr = Value.f32 wr and fg = Value.f32 wg and fb = Value.f32 wb in
  Array.init (Array.length r) (fun i ->
      (* mirror the device's fp32 rounding at every step *)
      let tr = Value.f32 (r.(i) *. fr) in
      let tg = Value.f32 (g.(i) *. fg) in
      let tb = Value.f32 (b.(i) *. fb) in
      Value.f32 (Value.f32 (tr +. tg) +. tb))

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let total = geometry ~size in
  let rng = Prng.create (0x5247 + size) in
  let r_data = Prng.float_array rng total ~lo:0.0 ~hi:1.0 in
  let g_data = Prng.float_array rng total ~lo:0.0 ~hi:1.0 in
  let b_data = Prng.float_array rng total ~lo:0.0 ~hi:1.0 in
  let alloc name data =
    let p = Memory.alloc mem ~name ~elem:Ctype.Float ~count:total in
    Memory.fill_floats mem p data;
    p
  in
  let r = alloc "rgb2gray.r" r_data in
  let g = alloc "rgb2gray.g" g_data in
  let b = alloc "rgb2gray.b" b_data in
  let gray =
    Memory.alloc mem ~name:"rgb2gray.gray" ~elem:Ctype.Float ~count:total
  in
  let expect = host_reference ~r:r_data ~g:g_data ~b:b_data in
  {
    Workload.args =
      [
        Value.Ptr gray; Value.Ptr r; Value.Ptr g; Value.Ptr b; Workload.fv wr;
        Workload.fv wg; Workload.fv wb; Workload.iv total;
      ];
    grid = Workload.default_grid;
    smem_dynamic = 0;
    outputs = [ ("rgb2gray.gray", gray, total) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"rgb2gray.gray" ~expect
          (Memory.read_floats mem gray total));
  }

let spec : Spec.t =
  {
    Spec.name = "Rgb2gray";
    kind = Spec.Image;
    source;
    regs = 18;
    native_block = (256, 1, 1);
    tunability = Hfuse_core.Kernel_info.Tunable { multiple_of = 32 };
    default_size = 8;
    instantiate;
  }

(* Segsum — segmented sum: one segment per block iteration, each block
   strides its threads over the segment, parks the partials in dynamic
   shared memory, and tree-reduces them.  The canonical shared-memory
   reduction shape (CUB's BlockReduce, cvGPUSpeedup's reduction
   pipelines); the barrier-per-halving structure exercises the fusion
   verifier's barrier analysis harder than any paper kernel except
   Batchnorm.  The tree indexing assumes a power-of-two blockDim, so the
   block size is Fixed. *)

open Cuda
open Gpusim

let source =
  {|
__global__ void segsum(float* out, float* in, int nseg, int seglen) {
  extern __shared__ unsigned char segsum_smem[];
  float* sm = (float*)segsum_smem;
  for (int s = blockIdx.x; s < nseg; s += gridDim.x) {
    float acc = 0.0f;
    for (int i = threadIdx.x; i < seglen; i += blockDim.x) {
      acc = acc + in[s * seglen + i];
    }
    sm[threadIdx.x] = acc;
    __syncthreads();
    for (int off = blockDim.x / 2; off > 0; off = off / 2) {
      if (threadIdx.x < off) {
        sm[threadIdx.x] = sm[threadIdx.x] + sm[threadIdx.x + off];
      }
      __syncthreads();
    }
    if (threadIdx.x == 0) { out[s] = sm[0]; }
    __syncthreads();
  }
}
|}

let block_threads = 256
let seglen = 256
let geometry ~size = 48 * max 1 size

(* Mirror the device's reduction order exactly: per-thread strided
   partials, then the shared-memory halving tree — every add rounded to
   fp32.  The result is bit-exact, no tolerance needed. *)
let host_reference ~input ~nseg : float array =
  Array.init nseg (fun s ->
      let partial = Array.make block_threads 0.0 in
      for t = 0 to block_threads - 1 do
        let acc = ref 0.0 in
        let i = ref t in
        while !i < seglen do
          acc := Value.f32 (!acc +. input.((s * seglen) + !i));
          i := !i + block_threads
        done;
        partial.(t) <- !acc
      done;
      let off = ref (block_threads / 2) in
      while !off > 0 do
        for t = 0 to !off - 1 do
          partial.(t) <- Value.f32 (partial.(t) +. partial.(t + !off))
        done;
        off := !off / 2
      done;
      partial.(0))

let instantiate (mem : Memory.t) ~size : Workload.instance =
  let nseg = geometry ~size in
  let total = nseg * seglen in
  let rng = Prng.create (0x5353 + size) in
  let input_data = Prng.float_array rng total ~lo:(-4.0) ~hi:4.0 in
  let input =
    Memory.alloc mem ~name:"segsum.input" ~elem:Ctype.Float ~count:total
  in
  Memory.fill_floats mem input input_data;
  let out = Memory.alloc mem ~name:"segsum.out" ~elem:Ctype.Float ~count:nseg in
  let expect = host_reference ~input:input_data ~nseg in
  {
    Workload.args =
      [ Value.Ptr out; Value.Ptr input; Workload.iv nseg; Workload.iv seglen ];
    grid = Workload.default_grid;
    smem_dynamic = block_threads * 4;
    outputs = [ ("segsum.out", out, nseg) ];
    check =
      (fun mem ->
        Workload.check_floats ~what:"segsum.out" ~expect
          (Memory.read_floats mem out nseg));
  }

let spec : Spec.t =
  {
    Spec.name = "Segsum";
    kind = Spec.Reduction;
    source;
    regs = 20;
    native_block = (block_threads, 1, 1);
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 4;
    instantiate;
  }

(* The fleet driver: corpus-scale fusion-search soak.

   Enumerates every unordered pair of the fleet corpus in canonical
   order, deterministically shards them ([--shards N --shard i] keeps
   the pairs whose index is congruent to i mod N), runs the Fig. 6
   search on each — in-process through the shared verb engine
   ({!Hfuse_serve.Ops.search}), or through a live daemon with
   [via_server] — and reports per-pair rows plus aggregate scaling
   metrics (throughput, cache traffic, fault recoveries).

   Determinism contract: a row is a pure function of (corpus, arch,
   sizes, top_k) — the same at any shard count, any [-j], any cache
   temperature, chaos on or off, in-process or via daemon.  The row
   digest is the MD5 of the search's byte-exact stdout payload, so CI
   can diff whole fleets cheaply.

   Kill/resume: with [resume] every completed row is journaled
   (checksummed, append-only, same format discipline as {!Checkpoint})
   and candidate-level profiling rides the regular checkpoint journal,
   so a shard killed mid-run resumes without recomputing finished
   pairs — and mid-pair kills resume without re-profiling finished
   candidates. *)

module Spec = Kernel_corpus.Spec
module Settings = Hfuse_profiler.Settings
module Checkpoint = Hfuse_profiler.Checkpoint
module Json = Hfuse_profiler.Report.Json
module Report = Hfuse_profiler.Report
module Ops = Hfuse_serve.Ops
module Protocol = Hfuse_serve.Protocol
module Client = Hfuse_serve.Client
module Fault = Hfuse_fault.Fault
module Pool = Hfuse_parallel.Pool
module Search = Hfuse_core.Search

type pair = { p_index : int; p_k1 : Spec.t; p_k2 : Spec.t; p_domain : string }

type row = {
  r_index : int;
  r_pair : string;
  r_domain : string;
  r_status : string;  (** ["ok" | "rejected" | "failed"] *)
  r_digest : string;  (** MD5 hex of the search output; [""] unless ok *)
  r_native_ms : float;
  r_best_ms : float;
  r_speedup_pct : float;
  r_repaired : bool;
      (** the search admitted at least one partition via repair *)
  r_newly_fusable : bool;
      (** every admitted candidate came through repair — without it the
          verifier would have rejected the whole pair *)
}

type config = {
  arch : Gpusim.Arch.t;
  shards : int;
  shard : int;
  limit : int option;  (** run only the first N pairs of the corpus *)
  jobs : int;
  size : int;  (** workload size for hand-written kernels *)
  top_k : int option;
  repair : bool;
      (** attempt diagnostic-driven repair of verifier-rejected
          partitions (admission stays behind the differential oracle) *)
  via_server : string option;  (** socket path: drive a live daemon *)
  resume : bool;
  out_dir : string option;  (** write [.cu] repros of failed pairs here *)
  settings : Settings.t;
  on_row : completed:int -> total:int -> row -> unit;
}

let default_config () : config =
  {
    arch = Gpusim.Arch.gtx1080ti;
    shards = 1;
    shard = 0;
    limit = None;
    jobs = 1;
    size = 1;
    top_k = None;
    repair = false;
    via_server = None;
    resume = false;
    out_dir = None;
    settings = Settings.current ();
    on_row = (fun ~completed:_ ~total:_ _ -> ());
  }

type result = {
  rows : row list;  (** this shard's rows, ascending index *)
  pairs_total : int;  (** corpus-wide pair count after [limit] *)
  executed : int;  (** rows computed in this invocation *)
  resumed : int;  (** rows replayed from the journal *)
  wall_s : float;
  telemetry : (string * (string * int) list) list;
      (** per-section counter sums over every executed search *)
  corpus_digest : string;
  kernels : int;
}

(* ------------------------------------------------------------------ *)
(* Pair enumeration and sharding                                        *)
(* ------------------------------------------------------------------ *)

let domain_name (k : Spec.kind) =
  match k with
  | Spec.Deep_learning -> "dl"
  | Spec.Crypto -> "crypto"
  | Spec.Image -> "image"
  | Spec.Reduction -> "reduction"
  | Spec.Generated -> "generated"

let domain_of (s1 : Spec.t) (s2 : Spec.t) =
  if s1.kind = s2.kind then domain_name s1.kind else "mixed"

(** Every unordered pair of the fleet corpus in canonical order:
    kernels in {!Corpus.all_specs} order, pairs (i, j) with i < j
    enumerated lexicographically and indexed from 0. *)
let all_pairs () : pair list =
  let specs = Array.of_list (Corpus.all_specs ()) in
  let n = Array.length specs in
  let out = ref [] in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let s1 = specs.(i) and s2 = specs.(j) in
      out :=
        { p_index = !idx; p_k1 = s1; p_k2 = s2; p_domain = domain_of s1 s2 }
        :: !out;
      incr idx
    done
  done;
  List.rev !out

let limited_pairs (cfg : config) : pair list =
  let ps = all_pairs () in
  match cfg.limit with
  | None -> ps
  | Some n -> List.filteri (fun i _ -> i < n) ps

let shard_pairs (cfg : config) : pair list =
  if cfg.shards < 1 then invalid_arg "fleet: shards must be >= 1";
  if cfg.shard < 0 || cfg.shard >= cfg.shards then
    invalid_arg "fleet: shard must be in [0, shards)";
  List.filter
    (fun p -> p.p_index mod cfg.shards = cfg.shard)
    (limited_pairs cfg)

(* ------------------------------------------------------------------ *)
(* Run identity and the row journal                                     *)
(* ------------------------------------------------------------------ *)

(* -j, fault plans, cache temperature and via_server are deliberately
   excluded: rows are bit-identical across them, so a resume may change
   any of them. *)
let run_id (cfg : config) : string =
  Checkpoint.run_id
    ~sim_fuel:cfg.settings.Settings.sim_fuel
    ~trace_blocks:cfg.settings.Settings.trace_blocks
    ~parts:
      ([
        "fleet";
        Corpus.digest ();
        cfg.arch.Gpusim.Arch.name;
        "size" ^ string_of_int cfg.size;
        (match cfg.limit with
        | None -> "nolimit"
        | Some n -> "limit" ^ string_of_int n);
        (match cfg.top_k with
        | None -> "exhaustive"
        | Some k -> "top" ^ string_of_int k);
        Printf.sprintf "shard%d.%d" cfg.shard cfg.shards;
      ]
      (* appended only when enabled, so every pre-repair journal id —
         and every repair-off id minted by this version — is unchanged *)
      @ (if cfg.repair then [ "repair" ] else []))
    ()

let json_of_row (r : row) : Json.t =
  Json.Obj
    [
      ("i", Json.Int r.r_index);
      ("pair", Json.Str r.r_pair);
      ("domain", Json.Str r.r_domain);
      ("status", Json.Str r.r_status);
      ("digest", Json.Str r.r_digest);
      ("native_ms", Json.Float r.r_native_ms);
      ("best_ms", Json.Float r.r_best_ms);
      ("speedup_pct", Json.Float r.r_speedup_pct);
      ("repaired", Json.Bool r.r_repaired);
      ("newly_fusable", Json.Bool r.r_newly_fusable);
    ]

let row_of_json (j : Json.t) : row option =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let num k = Option.bind (Json.member k j) Json.to_float_opt in
  let int k = match Json.member k j with Some (Json.Int i) -> Some i | _ -> None in
  match (int "i", str "pair", str "domain", str "status") with
  | Some i, Some pair, Some domain, Some status ->
      Some
        {
          r_index = i;
          r_pair = pair;
          r_domain = domain;
          r_status = status;
          r_digest = Option.value (str "digest") ~default:"";
          r_native_ms = Option.value (num "native_ms") ~default:0.0;
          r_best_ms = Option.value (num "best_ms") ~default:0.0;
          r_speedup_pct = Option.value (num "speedup_pct") ~default:0.0;
          (* absent in pre-repair journals: those rows never repaired *)
          r_repaired =
            (match Json.member "repaired" j with
            | Some (Json.Bool b) -> b
            | _ -> false);
          r_newly_fusable =
            (match Json.member "newly_fusable" j with
            | Some (Json.Bool b) -> b
            | _ -> false);
        }
  | _ -> None

let rows_path ~id = Filename.concat Checkpoint.default_dir (id ^ ".rows")

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Same discipline as Checkpoint: one "md5hex payload" line per record,
   flushed as written; corrupt or torn lines are dropped on load. *)
let load_rows path : (int, row) Hashtbl.t =
  let tbl = Hashtbl.create 256 in
  (if Sys.file_exists path then
     let ic = open_in path in
     (try
        while true do
          let line = input_line ic in
          if String.length line > 33 && line.[32] = ' ' then begin
            let sum = String.sub line 0 32 in
            let payload = String.sub line 33 (String.length line - 33) in
            if Digest.to_hex (Digest.string payload) = sum then
              match Json.of_string payload with
              | Ok j -> (
                  match row_of_json j with
                  | Some r -> Hashtbl.replace tbl r.r_index r
                  | None -> ())
              | Error _ -> ()
          end
        done
      with End_of_file -> ());
     close_in ic);
  tbl

let append_row oc (r : row) =
  let payload = Json.to_line (json_of_row r) in
  Printf.fprintf oc "%s %s\n" (Digest.to_hex (Digest.string payload)) payload;
  flush oc

(* ------------------------------------------------------------------ *)
(* Executing one pair                                                   *)
(* ------------------------------------------------------------------ *)

let size_for (cfg : config) (s : Spec.t) =
  match s.kind with Spec.Generated -> 1 | _ -> cfg.size

let params_for (cfg : config) (p : pair) : Ops.search_params =
  {
    Ops.s_arch = cfg.arch;
    s_k1 = p.p_k1;
    s_k2 = p.p_k2;
    s_size1 = Some (size_for cfg p.p_k1);
    s_size2 = Some (size_for cfg p.p_k2);
    s_emit = false;
    s_jobs = cfg.jobs;
    s_top_k = cfg.top_k;
    s_repair = cfg.repair;
  }

(* Parse the deterministic search output: the native baseline, the best
   candidate's time, and — under [--repair] — the repair summary line
   ("repaired: N partition(s), rejected: M[, newly fusable]").  The same
   text arrives from the in-process engine and from the daemon
   (byte-identical by the PR 7 contract), so rows agree across modes by
   construction. *)
let parse_output (output : string) : (float * float * bool * bool) option =
  let lines = String.split_on_char '\n' output in
  let tokens l =
    String.split_on_char ' ' l |> List.filter (fun s -> s <> "")
  in
  let native =
    List.find_map
      (fun l ->
        match tokens l with
        | [ "native:"; v; "ms" ] -> float_of_string_opt v
        | _ -> None)
      lines
  in
  let best_key =
    List.find_map
      (fun l ->
        match tokens l with
        | [ "best:"; part; cfg ] -> Some (part, cfg)
        | _ -> None)
      lines
  in
  let repaired, newly_fusable =
    List.find_map
      (fun l ->
        match tokens l with
        | "repaired:" :: n :: rest ->
            Option.map
              (fun n -> (n > 0, List.exists (String.equal "fusable") rest))
              (int_of_string_opt n)
        | _ -> None)
      lines
    |> Option.value ~default:(false, false)
  in
  match (native, best_key) with
  | Some native, Some (part, cfgs) ->
      let best_time =
        List.find_map
          (fun l ->
            match tokens l with
            | p :: c :: t :: "ms" :: _ when p = part && c = cfgs ->
                float_of_string_opt t
            | _ -> None)
          lines
      in
      Option.map (fun t -> (native, t, repaired, newly_fusable)) best_time
  | _ -> None

let row_of_output (p : pair) (output : string) : row =
  match parse_output output with
  | Some (native, best, repaired, newly_fusable) ->
      {
        r_index = p.p_index;
        r_pair = p.p_k1.Spec.name ^ "+" ^ p.p_k2.Spec.name;
        r_domain = p.p_domain;
        r_status = "ok";
        r_digest = Digest.to_hex (Digest.string output);
        r_native_ms = native;
        r_best_ms = best;
        r_speedup_pct = 100.0 *. ((native /. best) -. 1.0);
        r_repaired = repaired;
        r_newly_fusable = newly_fusable;
      }
  | None ->
      {
        r_index = p.p_index;
        r_pair = p.p_k1.Spec.name ^ "+" ^ p.p_k2.Spec.name;
        r_domain = p.p_domain;
        r_status = "failed";
        r_digest = "";
        r_native_ms = 0.0;
        r_best_ms = 0.0;
        r_speedup_pct = 0.0;
        r_repaired = false;
        r_newly_fusable = false;
      }

let status_row (p : pair) status : row =
  {
    r_index = p.p_index;
    r_pair = p.p_k1.Spec.name ^ "+" ^ p.p_k2.Spec.name;
    r_domain = p.p_domain;
    r_status = status;
    r_digest = "";
    r_native_ms = 0.0;
    r_best_ms = 0.0;
    r_speedup_pct = 0.0;
    r_repaired = false;
    r_newly_fusable = false;
  }

let write_repro (cfg : config) (p : pair) ~(detail : string) =
  match cfg.out_dir with
  | None -> ()
  | Some dir ->
      mkdir_p dir;
      let file =
        Filename.concat dir
          (Printf.sprintf "%04d_%s+%s.cu" p.p_index p.p_k1.Spec.name
             p.p_k2.Spec.name)
      in
      let oc = open_out file in
      Printf.fprintf oc "// fleet repro: pair %d (%s), %s\n// %s\n%s\n%s\n"
        p.p_index p.p_domain cfg.arch.Gpusim.Arch.name detail
        p.p_k1.Spec.source p.p_k2.Spec.source;
      close_out oc

(* One search through the in-process verb engine. *)
let run_local (cfg : config) ?pool ~checkpoint (p : pair) :
    row * Json.t option =
  match
    Ops.search ~settings:cfg.settings ~checkpoint ?pool (params_for cfg p)
  with
  | o -> (row_of_output p o.Ops.output, Some o.Ops.telemetry)
  | exception Search.No_valid_partition _ -> (status_row p "rejected", None)
  | exception Sys.Break -> raise Sys.Break
  | exception e ->
      write_repro cfg p ~detail:(Printexc.to_string e);
      (status_row p "failed", None)

(* One search through a live daemon.  Transport failures abort the run
   (a dead daemon must not masquerade as a thousand failed pairs);
   daemon-side rejections map to the same row statuses as local ones. *)
let run_via_server (cfg : config) ~socket (p : pair) : row * Json.t option =
  let req =
    {
      Protocol.id = Printf.sprintf "fleet-%d" p.p_index;
      priority = 0;
      settings = Protocol.spec_of_settings cfg.settings;
      verb = Protocol.Work (Ops.Search (params_for cfg p));
    }
  in
  match Client.call ~socket req with
  | Ok (Protocol.Result { output; exit_code = 0; telemetry; _ }) ->
      (row_of_output p output, Some telemetry)
  | Ok (Protocol.Result { exit_code; _ }) ->
      write_repro cfg p ~detail:(Printf.sprintf "daemon exit_code %d" exit_code);
      (status_row p "failed", None)
  | Ok (Protocol.Failure { message; _ }) ->
      let rejected =
        (* the daemon serialises the exception; classify it the same
           way the local path's handler does *)
        let sub = "No_valid_partition" in
        let n = String.length message and m = String.length sub in
        let rec has i =
          i + m <= n && (String.sub message i m = sub || has (i + 1))
        in
        has 0
      in
      if rejected then (status_row p "rejected", None)
      else begin
        write_repro cfg p ~detail:("daemon: " ^ message);
        (status_row p "failed", None)
      end
  | Error msg -> failwith (Printf.sprintf "fleet: daemon transport: %s" msg)

(* ------------------------------------------------------------------ *)
(* Telemetry aggregation                                                *)
(* ------------------------------------------------------------------ *)

(* Sum every integer leaf of the per-request telemetry, per section and
   field ("cache"/"hits", "fault"/"injected", ...).  Nested objects
   (the per-kind fault tallies) collapse into their section totals. *)
let add_telemetry (acc : (string * (string * int) list) list ref)
    (t : Json.t) =
  let bump section field n =
    let fields = try List.assoc section !acc with Not_found -> [] in
    let v = try List.assoc field fields with Not_found -> 0 in
    let fields = (field, v + n) :: List.remove_assoc field fields in
    acc := (section, fields) :: List.remove_assoc section !acc
  in
  match t with
  | Json.Obj sections ->
      List.iter
        (fun (section, body) ->
          match body with
          | Json.Obj fields ->
              List.iter
                (fun (field, v) ->
                  match v with
                  | Json.Int n -> bump section field n
                  | Json.Obj kinds ->
                      List.iter
                        (fun (_, kv) ->
                          match kv with
                          | Json.Int n -> bump section field n
                          | _ -> ())
                        kinds
                  | _ -> ())
                fields
          | _ -> ())
        sections
  | _ -> ()

let telemetry_get (t : (string * (string * int) list) list) section field =
  match List.assoc_opt section t with
  | None -> 0
  | Some fields -> Option.value (List.assoc_opt field fields) ~default:0

(* ------------------------------------------------------------------ *)
(* The drive loop                                                       *)
(* ------------------------------------------------------------------ *)

let run (cfg : config) : result =
  if cfg.via_server <> None && cfg.resume then
    invalid_arg "fleet: --resume does not apply to --via-server runs";
  Corpus.install ();
  let t0 = Unix.gettimeofday () in
  let pairs = shard_pairs cfg in
  let pairs_total = List.length (limited_pairs cfg) in
  let total = List.length pairs in
  let id = run_id cfg in
  let journal, checkpoint =
    if cfg.resume && cfg.via_server = None then begin
      mkdir_p Checkpoint.default_dir;
      let path = rows_path ~id in
      let done_rows = load_rows path in
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      (Some (done_rows, oc), Checkpoint.open_ ~run_id:id ())
    end
    else (None, Checkpoint.disabled)
  in
  let telemetry = ref [] in
  let telemetry_mutex = Mutex.create () in
  let resumed = ref 0 and executed = ref 0 in
  let results : row option array = Array.make total None in
  let completed = ref 0 in
  let record slot (r : row) ~(fresh : bool) =
    results.(slot) <- Some r;
    incr completed;
    if fresh then begin
      incr executed;
      match journal with
      | Some (_, oc) -> append_row oc r
      | None -> ()
    end
    else incr resumed;
    cfg.on_row ~completed:!completed ~total r
  in
  let note_telemetry = function
    | None -> ()
    | Some t ->
        Mutex.lock telemetry_mutex;
        add_telemetry telemetry t;
        Mutex.unlock telemetry_mutex
  in
  (match cfg.via_server with
  | Some socket ->
      (* soak the daemon with [jobs] concurrent client threads; rows
         land by index so completion order is irrelevant *)
      let parr = Array.of_list pairs in
      let next = ref 0 in
      let m = Mutex.create () in
      let take () =
        Mutex.lock m;
        let i = !next in
        if i < Array.length parr then incr next;
        Mutex.unlock m;
        if i < Array.length parr then Some i else None
      in
      let errors = ref [] in
      let worker () =
        let rec loop () =
          match take () with
          | None -> ()
          | Some i ->
              (match run_via_server cfg ~socket parr.(i) with
              | row, tel ->
                  note_telemetry tel;
                  Mutex.lock m;
                  record i row ~fresh:true;
                  Mutex.unlock m
              | exception e ->
                  Mutex.lock m;
                  errors := e :: !errors;
                  Mutex.unlock m);
              if !errors = [] then loop ()
        in
        loop ()
      in
      let threads =
        List.init (max 1 cfg.jobs) (fun _ -> Thread.create worker ())
      in
      List.iter Thread.join threads;
      (match !errors with e :: _ -> raise e | [] -> ())
  | None ->
      let pool = if cfg.jobs > 1 then Some (Pool.create cfg.jobs) else None in
      Fun.protect
        ~finally:(fun () -> Option.iter Pool.shutdown pool)
        (fun () ->
          List.iteri
            (fun slot p ->
              let journaled =
                match journal with
                | Some (done_rows, _) -> Hashtbl.find_opt done_rows p.p_index
                | None -> None
              in
              match journaled with
              | Some r -> record slot r ~fresh:false
              | None ->
                  let row, tel = run_local cfg ?pool ~checkpoint p in
                  note_telemetry tel;
                  record slot row ~fresh:true)
            pairs));
  (match journal with Some (_, oc) -> close_out oc | None -> ());
  Checkpoint.close checkpoint;
  let rows =
    Array.to_list results
    |> List.filter_map Fun.id
    |> List.sort (fun a b -> compare a.r_index b.r_index)
  in
  {
    rows;
    pairs_total;
    executed = !executed;
    resumed = !resumed;
    wall_s = Unix.gettimeofday () -. t0;
    telemetry = !telemetry;
    corpus_digest = Corpus.digest ();
    kernels = List.length (Corpus.all_specs ());
  }

(* ------------------------------------------------------------------ *)
(* The fleet report                                                     *)
(* ------------------------------------------------------------------ *)

let domain_stats (rows : row list) : Json.t =
  let domains =
    List.sort_uniq compare (List.map (fun r -> r.r_domain) rows)
  in
  Json.List
    (List.map
       (fun d ->
         let dr = List.filter (fun r -> r.r_domain = d) rows in
         let ok = List.filter (fun r -> r.r_status = "ok") dr in
         let count s =
           List.length (List.filter (fun r -> r.r_status = s) dr)
         in
         let speedups =
           List.map (fun r -> r.r_speedup_pct) ok |> List.sort compare
         in
         let stats =
           match speedups with
           | [] -> []
           | ss ->
               let n = List.length ss in
               let arr = Array.of_list ss in
               let median =
                 if n mod 2 = 1 then arr.(n / 2)
                 else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0
               in
               [
                 ("speedup_min", Json.Float arr.(0));
                 ("speedup_median", Json.Float median);
                 ( "speedup_mean",
                   Json.Float (List.fold_left ( +. ) 0.0 ss /. float_of_int n)
                 );
                 ("speedup_max", Json.Float arr.(n - 1));
               ]
         in
         let flag f = List.length (List.filter f dr) in
         Json.Obj
           ([
              ("domain", Json.Str d);
              ("pairs", Json.Int (List.length dr));
              ("ok", Json.Int (List.length ok));
              ("rejected", Json.Int (count "rejected"));
              ("failed", Json.Int (count "failed"));
              ("repaired", Json.Int (flag (fun r -> r.r_repaired)));
              ( "newly_fusable",
                Json.Int (flag (fun r -> r.r_newly_fusable)) );
            ]
           @ stats))
       domains)

let report_json (cfg : config) (r : result) : Json.t =
  let t = r.telemetry in
  let get = telemetry_get t in
  let failed_rows =
    List.length (List.filter (fun x -> x.r_status = "failed") r.rows)
  in
  let section name fields =
    (name, Json.Obj (List.map (fun f -> (f, Json.Int (get name f))) fields))
  in
  Json.Obj
    [
      ("bench", Json.Str "fleet");
      ("corpus_digest", Json.Str r.corpus_digest);
      ("kernels", Json.Int r.kernels);
      ("pairs_total", Json.Int r.pairs_total);
      ("shards", Json.Int cfg.shards);
      ("shard", Json.Int cfg.shard);
      ("size", Json.Int cfg.size);
      ("arch", Json.Str cfg.arch.Gpusim.Arch.name);
      ("jobs", Json.Int cfg.jobs);
      ("via_server", Json.Bool (cfg.via_server <> None));
      ( "top_k",
        match cfg.top_k with None -> Json.Null | Some k -> Json.Int k );
      ("repair", Json.Bool cfg.repair);
      ("rows_run", Json.Int (List.length r.rows));
      ( "rows_repaired",
        Json.Int
          (List.length (List.filter (fun x -> x.r_repaired) r.rows)) );
      ( "rows_newly_fusable",
        Json.Int
          (List.length (List.filter (fun x -> x.r_newly_fusable) r.rows)) );
      ("executed", Json.Int r.executed);
      ("resumed", Json.Int r.resumed);
      ("wall_s", Json.Float r.wall_s);
      ( "searches_per_min",
        Json.Float
          (if r.wall_s > 0.0 then float_of_int r.executed /. r.wall_s *. 60.0
           else 0.0) );
      section "search"
        ([
           "profiled"; "cache_hits"; "failed"; "ranked"; "pruned"; "traced";
           "trace_hits"; "trace_merged"; "repair_attempted"; "repaired";
           "repair_unsound";
         ]
         (* per-kind rejection histogram, summed across every search of
            the shard (the flat [rej_<tag>] fields of the per-request
            telemetry); fixed field set keeps the report shape stable *)
        @ List.map
            (fun tag -> "rej_" ^ tag)
            Hfuse_analysis.Diag.all_kind_tags);
      section "cache" [ "hits"; "misses"; "stores"; "quarantined" ];
      section "trace_store"
        [ "mem_hits"; "disk_hits"; "recorded"; "quarantined" ];
      section "pool" [ "failures"; "retries"; "recovered" ];
      ( "fault",
        Json.Obj
          [
            ("injected", Json.Int (get "fault" "injected"));
            ("recovered", Json.Int (get "fault" "recovered"));
            (* a fault that escapes every recovery layer surfaces as a
               failed row — under chaos, this is the gated invariant *)
            ("unrecovered", Json.Int failed_rows);
          ] );
      ( "quarantined",
        Json.Int (get "cache" "quarantined" + get "trace_store" "quarantined")
      );
      ("domains", domain_stats r.rows);
      ("rows", Json.List (List.map json_of_row r.rows));
    ]

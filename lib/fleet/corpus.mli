(** The fleet corpus: the hand-written extended registry plus a curated
    set of fuzzer-generated kernels.

    Curation is a deterministic scan: seeds are tried from 0 upward and
    kept iff {!vet} accepts the generated kernel — so every process
    reconstructs the identical corpus with no hand-maintained seed
    list, and {!digest} fingerprints it for CI cache keys and
    checkpoint run ids. *)

type entry = {
  seed : int;  (** generator seed (also encoded in the kernel name) *)
  kernel : Hfuse_fuzz.Gen.kernel;
  spec : Kernel_corpus.Spec.t;
}

val generated_count : int
(** How many curated generated kernels the corpus carries (33). *)

val kernel_name : int -> string
(** ["gen%03d"] of the seed. *)

val vet : Hfuse_fuzz.Gen.kernel -> (unit, string) result
(** The curation predicate: source round-trips through the parser, the
    solo verifier reports no diagnostics on the normalized body,
    registers/shared memory are modest, and a solo simulated launch
    completes under the fuzzer's loop-fuel budget. *)

val spec_of_kernel : Hfuse_fuzz.Gen.kernel -> Kernel_corpus.Spec.t
(** Wrap a generated kernel as a corpus spec: [instantiate] binds the
    oracle's deterministic buffer contents, [check] is trivial (the
    differential oracle is the correctness story for generated
    kernels), tunability is [Fixed]. *)

val curated : unit -> entry list
(** The curated corpus, in ascending seed order.  Memoized; the first
    call runs the scan (a few seconds of generation + vetting). *)

val all_specs : unit -> Kernel_corpus.Spec.t list
(** Canonical fleet order: {!Kernel_corpus.Registry.extended}, then the
    curated generated kernels by ascending seed. *)

val install : unit -> unit
(** Publish the generated specs through
    {!Kernel_corpus.Registry.register_extra} so name-based resolution
    (CLI flags, the daemon protocol) sees them. *)

val digest : unit -> string
(** MD5 hex fingerprint of the whole corpus (names, sources, resource
    calibration, launch shapes) — the CI cache key and a component of
    fleet checkpoint run ids. *)

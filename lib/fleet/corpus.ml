(* The fleet corpus: the hand-written extended registry plus a curated
   set of fuzzer-generated kernels.

   Curation is a deterministic scan, not a hand-picked list: seeds are
   tried in order from 0 and a seed is kept iff its generated kernel
   passes {!vet} — source round-trips through the parser, the solo
   verifier is clean, resources are modest, and a solo simulated launch
   completes.  The scan is a pure function of the generator, so every
   process (bench driver, daemon, tests) reconstructs the identical
   corpus, and {!digest} fingerprints it for cache keys and checkpoint
   run ids. *)

open Cuda
module Gen = Hfuse_fuzz.Gen
module Spec = Kernel_corpus.Spec
module Registry = Kernel_corpus.Registry
module Workload = Kernel_corpus.Workload
module Prng = Kernel_corpus.Prng
module Memory = Gpusim.Memory
module Value = Gpusim.Value
module Launch = Gpusim.Launch

type entry = { seed : int; kernel : Gen.kernel; spec : Spec.t }

let generated_count = 33

(* Generated kernels launch the corpus-wide default grid so any pair —
   generated x generated or generated x hand-written — agrees on the
   launch shape. *)
let gen_grid = Workload.default_grid

(* Same loop-fuel budget as the differential fuzzer: generated loops
   have constant trip counts, so anything that needs more is broken. *)
let vet_loop_fuel = 20_000

let max_regs = 64
let max_smem = 4096

let kernel_name seed = Printf.sprintf "gen%03d" seed

(* Deterministically allocate-and-fill a generated kernel's buffers —
   the differential oracle's binding, so the fleet exercises the same
   memory contents the fuzzer vetted. *)
let bind (k : Gen.kernel) mem : Value.t list =
  let prng = Prng.create k.Gen.g_fill_seed in
  let name_prefix = k.Gen.g_info.fn.f_name in
  let ptr_args =
    List.map
      (fun (b : Gen.buffer) ->
        let ptr =
          Memory.alloc mem
            ~name:(name_prefix ^ "." ^ b.b_name)
            ~elem:b.b_elem ~count:b.b_count
        in
        (match b.b_elem with
        | Ctype.Float | Ctype.Double ->
            Memory.fill_floats mem ptr
              (Prng.float_array prng b.b_count ~lo:(-4.0) ~hi:4.0)
        | Ctype.Long | Ctype.ULong ->
            Memory.fill_int64s mem ptr (Prng.int64_array prng b.b_count)
        | _ ->
            Memory.fill_int32s mem ptr
              (Prng.int32_array prng b.b_count ~bound:1024));
        (ptr, b))
      k.Gen.g_buffers
  in
  List.map (fun (p, _) -> Value.Ptr p) ptr_args
  @ [ Value.Int (Int32.of_int k.Gen.g_n) ]

let spec_of_kernel (k : Gen.kernel) : Spec.t =
  let info = k.Gen.g_info in
  let source = Gen.kernel_source k in
  {
    Spec.name = info.fn.f_name;
    kind = Spec.Generated;
    source;
    regs = info.regs;
    native_block = info.block;
    (* block-size retuning would change shuffle/shared semantics the
       generator fixed at creation time *)
    tunability = Hfuse_core.Kernel_info.Fixed;
    default_size = 1;
    instantiate =
      (fun mem ~size:_ ->
        let args = bind k mem in
        let outputs =
          List.map2
            (fun arg (b : Gen.buffer) ->
              match arg with
              | Value.Ptr p -> (info.fn.f_name ^ "." ^ b.b_name, p, b.b_count)
              | _ -> assert false)
            (List.filteri
               (fun i _ -> i < List.length k.Gen.g_buffers)
               args)
            k.Gen.g_buffers
        in
        {
          Workload.args;
          grid = info.grid;
          smem_dynamic = info.smem_dynamic;
          outputs;
          (* correctness of generated kernels is the differential
             oracle's job (unfused-vs-fused byte equality); there is no
             host reference to check against *)
          check = (fun _ -> Ok ());
        });
  }

(* ------------------------------------------------------------------ *)
(* Vetting                                                              *)
(* ------------------------------------------------------------------ *)

let vet (k : Gen.kernel) : (unit, string) result =
  let info = k.Gen.g_info in
  let bx, by, bz = info.block in
  let threads = bx * by * bz in
  try
    if info.regs > max_regs then Error (Fmt.str "regs %d > %d" info.regs max_regs)
    else if info.smem_dynamic > max_smem then
      Error (Fmt.str "smem %d > %d" info.smem_dynamic max_smem)
    else begin
      (* 1. the pretty-printed source must parse back to the same fn —
         Spec.kernel_info reconstructs the kernel from source *)
      let src = Gen.kernel_source k in
      let _, fn = Parser.parse_kernel src in
      if fn.f_name <> info.fn.f_name then Error "name lost in roundtrip"
      else if not (Ast_util.equal_normalized info.fn.f_body fn.f_body) then
        Error "body differs after reparse"
      else begin
        (* 2. solo fusion-safety verification on the normalized body *)
        let fn' = Hfuse_frontend.Inline.normalize_kernel info.prog info.fn in
        match
          Hfuse_analysis.Verifier.verify_kernel ~label:info.fn.f_name ~threads
            ~regs:info.regs ~smem_dynamic:info.smem_dynamic fn'.f_body
        with
        | _ :: _ as diags ->
            Error
              (Fmt.str "verifier: %s"
                 (Hfuse_analysis.Diag.report_to_string diags))
        | [] -> (
            (* 3. a solo simulated launch must complete *)
            let mem = Memory.create () in
            let args = bind k mem in
            match
              Launch.launch_info ~loop_fuel:vet_loop_fuel mem info ~args
                ~trace_blocks:0
            with
            | _ -> Ok ()
            | exception Launch.Deadlock msg -> Error ("deadlock: " ^ msg)
            | exception Launch.Launch_error msg ->
                Error ("launch error: " ^ msg)
            | exception Launch.Sim_timeout _ -> Error "loop fuel exhausted"
            | exception Gpusim.Interp.Exec_error msg ->
                Error ("exec error: " ^ msg)
            | exception Value.Runtime_error msg ->
                Error ("runtime error: " ^ msg))
      end
    end
  with
  | Parser.Error (msg, _) -> Error ("reparse: " ^ msg)
  | Failure msg -> Error ("reparse: " ^ msg)

(* ------------------------------------------------------------------ *)
(* The deterministic scan                                               *)
(* ------------------------------------------------------------------ *)

let max_scan = 4096 (* far beyond what 33 acceptances ever need *)

let build_curated () : entry list =
  let rec scan seed acc n =
    if n >= generated_count then List.rev acc
    else if seed >= max_scan then
      invalid_arg
        (Fmt.str "fleet corpus: only %d of %d seeds vetted after %d candidates"
           n generated_count max_scan)
    else
      let prng = Prng.create (0x464C5400 + seed) in
      let k =
        Gen.generate_kernel ~prng ~name:(kernel_name seed) ~grid:gen_grid
          ~allow_griddim:false ()
      in
      match vet k with
      | Ok () ->
          scan (seed + 1) ({ seed; kernel = k; spec = spec_of_kernel k } :: acc)
            (n + 1)
      | Error _ -> scan (seed + 1) acc n
  in
  scan 0 [] 0

let curated_memo : entry list option ref = ref None
let memo_mutex = Mutex.create ()

let curated () =
  Mutex.lock memo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mutex)
    (fun () ->
      match !curated_memo with
      | Some es -> es
      | None ->
          let es = build_curated () in
          curated_memo := Some es;
          es)

let generated_specs () = List.map (fun e -> e.spec) (curated ())

(* Canonical fleet order: the hand-written extended registry, then the
   generated kernels by ascending seed.  Pair enumeration, sharding and
   the digest all derive from this order. *)
let all_specs () = Registry.extended @ generated_specs ()

let install () =
  List.iter Registry.register_extra (generated_specs ())

let digest () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (s : Spec.t) ->
      let bx, by, bz = s.native_block in
      Buffer.add_string b
        (Printf.sprintf "%s|%s|%s|%d|%dx%dx%d|%s|%d\n" s.name
           (Fmt.str "%a" Spec.pp_kind s.kind)
           (Digest.to_hex (Digest.string s.source))
           s.regs bx by bz
           (match s.tunability with
           | Hfuse_core.Kernel_info.Fixed -> "fixed"
           | Hfuse_core.Kernel_info.Tunable { multiple_of } ->
               Printf.sprintf "tunable%d" multiple_of)
           s.default_size))
    (all_specs ());
  Digest.to_hex (Digest.string (Buffer.contents b))

(** The fleet driver: corpus-scale fusion-search soak.

    Enumerates every unordered pair of the fleet corpus ({!Corpus}),
    deterministically shards them, runs the Fig. 6 search on each —
    in-process through {!Hfuse_serve.Ops.search} or against a live
    daemon — and reports per-pair rows plus aggregate scaling metrics.

    Determinism contract: a row is a pure function of (corpus, arch,
    sizes, top_k).  It is bit-identical at any shard count, any [-j],
    any cache temperature, chaos on or off, in-process or via daemon —
    the gated invariant CI diffs shard unions against. *)

module Spec := Kernel_corpus.Spec
module Json := Hfuse_profiler.Report.Json

type pair = { p_index : int; p_k1 : Spec.t; p_k2 : Spec.t; p_domain : string }

type row = {
  r_index : int;  (** pair index in canonical corpus order *)
  r_pair : string;  (** ["k1+k2"] *)
  r_domain : string;  (** same-kind pairs: the kind; else ["mixed"] *)
  r_status : string;  (** ["ok" | "rejected" | "failed"] *)
  r_digest : string;  (** MD5 hex of the search output; [""] unless ok *)
  r_native_ms : float;
  r_best_ms : float;
  r_speedup_pct : float;
  r_repaired : bool;
      (** the search admitted at least one partition via the repair
          engine (always [false] without [config.repair]) *)
  r_newly_fusable : bool;
      (** every admitted candidate came through repair — without it the
          verifier would have rejected the whole pair *)
}

type config = {
  arch : Gpusim.Arch.t;
  shards : int;  (** total shard count (>= 1) *)
  shard : int;  (** this invocation's shard in [[0, shards)] *)
  limit : int option;  (** run only the first N pairs of the corpus *)
  jobs : int;  (** local: pool workers; via-server: client threads *)
  size : int;  (** workload size for hand-written kernels *)
  top_k : int option;  (** analytical top-K pruning *)
  repair : bool;
      (** attempt diagnostic-driven repair of verifier-rejected
          partitions; admission stays behind the differential oracle *)
  via_server : string option;  (** socket path: drive a live daemon *)
  resume : bool;  (** journal rows; replay finished pairs on restart *)
  out_dir : string option;  (** write [.cu] repros of failed pairs *)
  settings : Hfuse_profiler.Settings.t;
  on_row : completed:int -> total:int -> row -> unit;  (** progress *)
}

val default_config : unit -> config
(** One shard of everything, serial, size 1, no resume, env settings. *)

type result = {
  rows : row list;  (** this shard's rows, ascending index *)
  pairs_total : int;  (** corpus-wide pair count after [limit] *)
  executed : int;  (** rows computed in this invocation *)
  resumed : int;  (** rows replayed from the journal *)
  wall_s : float;
  telemetry : (string * (string * int) list) list;
      (** per-section counter sums over every executed search *)
  corpus_digest : string;
  kernels : int;
}

val all_pairs : unit -> pair list
(** Every unordered pair in canonical order: kernels in
    {!Corpus.all_specs} order, (i, j) with i < j lexicographic,
    indexed from 0. *)

val shard_pairs : config -> pair list
(** The pairs this configuration runs: first [limit], then keep the
    indices congruent to [shard] mod [shards]. *)

val run_id : config -> string
(** Content-hashed identity of this shard's row journal.  [-j], cache
    temperature, chaos plans and [via_server] are deliberately
    excluded — rows are bit-identical across them, so a resume may
    change any of them. *)

val run : config -> result
(** Drive the shard.  With [resume], finished rows replay from the
    journal ([Checkpoint.default_dir/<run_id>.rows]) and candidate
    profiling rides the regular checkpoint journal, so kills resume
    without recomputation.  A daemon transport error aborts the run
    (raises [Failure]) rather than recording failed rows. *)

val report_json : config -> result -> Json.t
(** The fleet report: corpus identity, throughput, cache / trace-store
    / pool / fault tallies (with [unrecovered] = failed-row count),
    per-domain speedup distributions, and the full row list. *)

val telemetry_get : (string * (string * int) list) list -> string -> string -> int
(** [telemetry_get t section field] — 0 when absent. *)

(* Diagnostic-driven repair of rejected fusions.

   The fusion-safety verifier (lib/analysis) refuses unsafe fusions with
   a structured [Diag.kind] list.  Following GPURepair's
   insert/remove-barrier approach and the source paper's resource-aware
   transformations, each kind maps to one minimal transformation:

     barrier-id-collision      renumber the second kernel's bar.sync id
     barrier-id-out-of-range   renumber onto a free id in 1..15
     barrier-count-unaligned   set the count to the side's partition
     barrier-count-mismatch    set the count to the side's partition
     full-barrier-in-partition rewrite __syncthreads() to bar.sync
     shared-race (error)       leader-elect the block-uniform write and
                               barrier behind it
     shared-overlap            re-base the dynamic regions serially
     over-budget (registers)   force the largest residency-restoring
                               register bound
     over-budget (smem)        shrink the inter-kernel padding
     divergent-barrier         unserviceable (control restructuring is
                               out of scope)

   The engine then re-verifies and iterates to a bounded fixpoint.
   Every failure mode fails closed: the caller keeps its rejection.

   Soundness is NOT established here — a statically clean repair can
   still change observable bytes (e.g. electing thread 0 as the writer
   of a genuinely thread-dependent store).  Admission paths run the
   differential oracle on every repair; this library stays free of
   simulator dependencies so it can be used from the fuzzer, the
   search harness and the daemon alike. *)

open Cuda
module Diag = Hfuse_analysis.Diag
module Verifier = Hfuse_analysis.Verifier
module Limits = Hfuse_analysis.Limits
module Hfuse = Hfuse_core.Hfuse
module Kernel_info = Hfuse_core.Kernel_info
module Barrier = Hfuse_core.Barrier
module SS = Ast_util.StrSet

type action = { a_tag : string; a_detail : string }

let pp_action ppf a = Fmt.pf ppf "repair[%s]: %s" a.a_tag a.a_detail
let action tag fmt = Fmt.kstr (fun s -> { a_tag = tag; a_detail = s }) fmt

type repaired = {
  fused : Hfuse.t;
  reg_bound : int option;
  actions : action list;
  rounds : int;
  residual : Diag.t list;
}

type failure =
  | Unserviceable of Diag.t list
  | No_progress of Diag.t list
  | Budget_exhausted of Diag.t list
  | Generate_failed of string

let failure_diags = function
  | Unserviceable ds | No_progress ds | Budget_exhausted ds -> ds
  | Generate_failed _ -> []

let pp_failure ppf = function
  | Unserviceable ds ->
      Fmt.pf ppf "unserviceable: no repair strategy for %a"
        Fmt.(list ~sep:comma string)
        (List.sort_uniq compare
           (List.map (fun (d : Diag.t) -> Diag.kind_tag d.kind) ds))
  | No_progress _ -> Fmt.string ppf "no progress: repairs left errors standing"
  | Budget_exhausted _ -> Fmt.string ppf "round budget exhausted"
  | Generate_failed msg -> Fmt.pf ppf "regeneration failed: %s" msg

let default_rounds = 8

(* -- statement-level transformations (shared by both engines) -------- *)

(** [bar.sync from_id, c] becomes [bar.sync to_id, c]. *)
let renumber_barrier ~from_id ~to_id stmts =
  Ast_util.map_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Bar_sync (id, c) when id = from_id ->
          [ { st with s = Ast.Bar_sync (to_id, c) } ]
      | _ -> [ st ])
    stmts

(** Every [bar.sync id, _] gets thread count [count]. *)
let set_barrier_count ~id ~count stmts =
  Ast_util.map_stmts
    (fun st ->
      match st.Ast.s with
      | Ast.Bar_sync (i, c) when i = id && c <> count ->
          [ { st with s = Ast.Bar_sync (i, count) } ]
      | _ -> [ st ])
    stmts

let has_barrier_id ~id stmts =
  Ast_util.fold_stmts
    (fun acc st ->
      acc || match st.Ast.s with Ast.Bar_sync (i, _) -> i = id | _ -> false)
    false stmts

(* the leader-election idiom the verifier's race check accepts: an
   equality with exactly one thread-dependent operand *)
let singleton_guard ~tainted guards =
  List.exists
    (fun g ->
      Ast_util.fold_expr
        (fun acc e ->
          acc
          ||
          match e with
          | Ast.Binop (Ast.Eq, a, b) ->
              Ast_util.expr_thread_dependent ~tainted a
              <> Ast_util.expr_thread_dependent ~tainted b
          | _ -> false)
        false g)
    guards

(** Wrap every top-level statement performing an unguarded non-atomic
    write to a [shared] array at a block-uniform index in
    [if (threadIdx.x == 0) { ... }], with [mk_barrier ()] after it so
    later readers observe the elected writer's store.  Statements that
    already contain a barrier are left alone (guarding them would
    create divergent-barrier deadlocks).  Returns the rewritten body
    and how many statements were wrapped. *)
let guard_uniform_shared_writes ?seeds ~shared ~mk_barrier body =
  let tainted = Ast_util.thread_dependent_vars ?seeds body in
  let leader =
    Ast.Binop (Ast.Eq, Ast.Builtin (Ast.Thread_idx Ast.X), Ast.int_lit 0)
  in
  let wrapped = ref 0 in
  let body' =
    List.concat_map
      (fun st ->
        let racing (a : Ast_util.access) =
          SS.mem a.acc_array shared
          && a.acc_kind = `Write
          && (not (Ast_util.expr_thread_dependent ~tainted a.acc_index))
          && not (singleton_guard ~tainted a.acc_guards)
        in
        if
          List.exists racing (Ast_util.array_accesses [ st ])
          && not (Ast_util.has_barrier [ st ])
        then begin
          incr wrapped;
          [ Ast.mk_stmt (Ast.If (leader, [ st ], [])); mk_barrier () ]
        end
        else [ st ])
      body
  in
  (body', !wrapped)

let shared_decl_names body =
  List.fold_left
    (fun acc (d : Ast.decl) ->
      match d.d_storage with
      | Ast.Shared | Ast.Shared_extern -> SS.add d.d_name acc
      | Ast.Local -> acc)
    SS.empty
    (Ast_util.collect_decls body)

(* -- resource strategies --------------------------------------------- *)

(** The largest granularity-aligned per-thread register allocation that
    lets at least one fused block fit on the SM; [None] when no bound
    below the current effective allocation restores residency (another
    resource binds, or the bound would not shrink anything). *)
let residency_reg_bound (limits : Limits.t) ~threads ~smem ~effective_regs :
    int option =
  let g = limits.reg_alloc_granularity in
  let r = limits.regs_per_sm / max 1 threads / g * g in
  let r = min r limits.max_regs_per_thread in
  if r < g || r >= effective_regs then None
  else if Limits.blocks_per_sm limits ~regs:r ~threads ~smem = 0 then None
  else Some r

(* -- kernel-pair repair (the search path) ---------------------------- *)

type state = {
  k1 : Kernel_info.t;
  k2 : Kernel_info.t;
  reg_bound : int option;
  smem_align : int;  (** inter-kernel padding alignment fed to generate *)
  acts : action list;  (** reversed *)
}

let with_body (k : Kernel_info.t) body : Kernel_info.t =
  let fn = { k.fn with Ast.f_body = body } in
  let functions =
    List.map
      (fun (f : Ast.fn) -> if String.equal f.f_name fn.f_name then fn else f)
      k.prog.Ast.functions
  in
  { k with fn; prog = { k.prog with functions } }

(* a fresh barrier id for renumbering must leave two ids free for the
   fresh per-side ids generate itself assigns *)
let renumber_target st ~extra =
  let used =
    extra
    @ Barrier.used_ids st.k1.fn.f_body
    @ Barrier.used_ids st.k2.fn.f_body
  in
  match Barrier.fresh_id used with
  | exception Barrier.Invalid_barrier _ -> None
  | id -> (
      match Barrier.fresh_id (id :: used) with
      | exception Barrier.Invalid_barrier _ -> None
      | id2 -> (
          match Barrier.fresh_id (id2 :: id :: used) with
          | exception Barrier.Invalid_barrier _ -> None
          | _ -> Some id))

(** Apply one round of strategies to the input pair.  Returns the new
    state and whether anything changed. *)
let apply_pair_strategies (limits : Limits.t) (st : state)
    (errs : Diag.t list) : state * bool =
  let st = ref st and changed = ref false in
  let update ?(did = true) act s' =
    if did then begin
      st := { s' with acts = act :: s'.acts };
      changed := true
    end
  in
  let renumber ~which ~from_id =
    let s = !st in
    let body =
      match which with `K1 -> s.k1.fn.Ast.f_body | `K2 -> s.k2.fn.Ast.f_body
    in
    if not (has_barrier_id ~id:from_id body) then ()
    else
      match renumber_target s ~extra:[] with
      | None -> ()
      | Some to_id ->
          let body' = renumber_barrier ~from_id ~to_id body in
          let name =
            match which with
            | `K1 -> s.k1.fn.Ast.f_name
            | `K2 -> s.k2.fn.Ast.f_name
          in
          let s' =
            match which with
            | `K1 -> { s with k1 = with_body s.k1 body' }
            | `K2 -> { s with k2 = with_body s.k2 body' }
          in
          update
            (action "renumber-barrier" "%s: bar.sync id %d -> %d" name
               from_id to_id)
            s'
  in
  let set_count ~id ~count =
    (* rewrite in whichever input carries the offending barrier, to that
       kernel's own partition width *)
    List.iter
      (fun which ->
        let s = !st in
        let k = match which with `K1 -> s.k1 | `K2 -> s.k2 in
        let d = Kernel_info.threads_per_block k in
        let body = k.fn.Ast.f_body in
        if has_barrier_id ~id body && d mod 32 = 0 then begin
          let body' = set_barrier_count ~id ~count:d body in
          if not (Ast_util.equal_stmts body body') then
            let s' =
              match which with
              | `K1 -> { s with k1 = with_body s.k1 body' }
              | `K2 -> { s with k2 = with_body s.k2 body' }
            in
            update
              (action "set-barrier-count" "%s: bar.sync %d count %d -> %d"
                 k.fn.Ast.f_name id count d)
              s'
        end)
      [ `K1; `K2 ]
  in
  List.iter
    (fun (d : Diag.t) ->
      match d.kind with
      | Diag.Barrier_id_collision { id; _ } ->
          (* both sides carry [id]; keep kernel 1's and move kernel 2's *)
          renumber ~which:`K2 ~from_id:id
      | Diag.Barrier_id_out_of_range { id; _ } ->
          renumber ~which:`K1 ~from_id:id;
          renumber ~which:`K2 ~from_id:id
      | Diag.Barrier_count_unaligned { id; count }
      | Diag.Barrier_count_mismatch { id; count; _ } ->
          set_count ~id ~count
      | Diag.Shared_race { label; _ } when d.severity = Diag.Error ->
          List.iter
            (fun which ->
              let s = !st in
              let k = match which with `K1 -> s.k1 | `K2 -> s.k2 in
              if String.equal k.fn.Ast.f_name label then begin
                let body = k.fn.Ast.f_body in
                let body', n =
                  guard_uniform_shared_writes ~shared:(shared_decl_names body)
                    ~mk_barrier:(fun () -> Ast.mk_stmt Ast.Sync)
                    body
                in
                if n > 0 then
                  let s' =
                    match which with
                    | `K1 -> { s with k1 = with_body s.k1 body' }
                    | `K2 -> { s with k2 = with_body s.k2 body' }
                  in
                  update
                    (action "guard-shared-write"
                       "%s: %d block-uniform shared write(s) behind \
                        threadIdx.x == 0 + barrier"
                       label n)
                    s'
              end)
            [ `K1; `K2 ]
      | Diag.Over_budget { resource = Limits.By_registers; _ } ->
          let s = !st in
          let threads =
            Kernel_info.threads_per_block s.k1
            + Kernel_info.threads_per_block s.k2
          in
          let effective_regs =
            let fused =
              Hfuse_core.Fuse_common.fused_regs s.k1.regs s.k2.regs
            in
            match s.reg_bound with Some b -> min b fused | None -> fused
          in
          let smem =
            (* generate's layout: k1 at 0, k2 after aligned padding *)
            let align n a = (n + a - 1) / a * a in
            align s.k1.smem_dynamic s.smem_align + s.k2.smem_dynamic
          in
          (match
             residency_reg_bound limits ~threads ~smem ~effective_regs
           with
          | None -> ()
          | Some r ->
              update
                (action "bound-registers"
                   "force register bound %d (%d threads on a %d-register \
                    SM)"
                   r threads limits.regs_per_sm)
                { s with reg_bound = Some r })
      | Diag.Over_budget { resource = Limits.By_smem; _ } ->
          let s = !st in
          if s.smem_align > 4 && s.k1.smem_dynamic > 0 then
            update
              (action "shrink-smem-padding"
                 "inter-kernel shared-memory alignment %d -> %d"
                 s.smem_align (s.smem_align / 2))
              { s with smem_align = s.smem_align / 2 }
      | Diag.Over_budget { resource = Limits.By_threads | Limits.By_block_slots; _ }
      | Diag.Divergent_barrier _
      | Diag.Full_barrier_in_partition _ (* generate never emits these *)
      | Diag.Shared_overlap _ | Diag.Shared_race _ ->
          ())
    errs;
  (!st, !changed)

let attempt ?(limits = Limits.pascal_volta) ?(max_rounds = default_rounds)
    (k1 : Kernel_info.t) (k2 : Kernel_info.t) : (repaired, failure) result =
  let rec go st round =
    match
      Hfuse.generate ~check:false ~limits ~smem_align:st.smem_align st.k1
        st.k2
    with
    | exception Hfuse_core.Fuse_common.Fusion_error msg ->
        Error (Generate_failed msg)
    | exception Barrier.Invalid_barrier msg -> Error (Generate_failed msg)
    | fused ->
        let regs =
          match st.reg_bound with
          | Some b -> min b fused.Hfuse.regs
          | None -> fused.Hfuse.regs
        in
        let diags =
          Verifier.verify ~limits
            ~threads:(Hfuse.threads_per_block fused)
            ~regs ~smem_dynamic:fused.Hfuse.smem_dynamic fused.Hfuse.sides
        in
        if Diag.is_clean diags then
          Ok
            {
              fused;
              reg_bound = st.reg_bound;
              actions = List.rev st.acts;
              rounds = round;
              residual = diags;
            }
        else
          let errs = Diag.errors diags in
          if round >= max_rounds then Error (Budget_exhausted errs)
          else
            let st', changed = apply_pair_strategies limits st errs in
            if not changed then
              Error
                (if st.acts = [] then Unserviceable errs
                 else No_progress errs)
            else go st' (round + 1)
  in
  go { k1; k2; reg_bound = None; smem_align = 16; acts = [] } 0

(* -- sides-level repair (already-fused sources) ---------------------- *)

type sides_repaired = {
  r_sides : Verifier.side list;
  r_smem_dynamic : int;
  r_reg_bound : int option;
  r_actions : action list;
  r_rounds : int;
  r_residual : Diag.t list;
}

type sides_state = {
  sides : Verifier.side list;
  smem_dynamic : int;
  bound : int option;
  sacts : action list;  (** reversed *)
}

let side_set ~label f sides =
  List.map
    (fun (s : Verifier.side) ->
      if String.equal s.Verifier.s_label label then f s else s)
    sides

let all_side_ids (sides : Verifier.side list) =
  List.concat_map
    (fun (s : Verifier.side) ->
      (match s.Verifier.s_bar with Some (id, _) -> [ id ] | None -> [])
      @ Barrier.used_ids s.Verifier.s_body)
    sides

let rebase_dynamic_regions (sides : Verifier.side list) :
    Verifier.side list * int =
  let align n a = (n + a - 1) / a * a in
  let off = ref 0 in
  let sides' =
    List.map
      (fun (s : Verifier.side) ->
        let regions =
          List.map
            (fun (r : Verifier.region) ->
              if r.Verifier.r_dynamic && r.Verifier.r_bytes > 0 then begin
                let o = align !off 16 in
                off := o + r.Verifier.r_bytes;
                { r with Verifier.r_offset = o }
              end
              else r)
            s.Verifier.s_shared
        in
        { s with Verifier.s_shared = regions })
      sides
  in
  (sides', !off)

let apply_sides_strategies (limits : Limits.t) ~threads ~regs
    (st : sides_state) (errs : Diag.t list) : sides_state * bool =
  let st = ref st and changed = ref false in
  let update act s' =
    st := { s' with sacts = act :: s'.sacts };
    changed := true
  in
  List.iter
    (fun (d : Diag.t) ->
      match d.kind with
      | Diag.Full_barrier_in_partition { label } ->
          let s = !st in
          let fired = ref None in
          let sides' =
            side_set ~label
              (fun side ->
                let id =
                  match side.Verifier.s_bar with
                  | Some (id, _) -> Some id
                  | None -> (
                      match Barrier.fresh_id (all_side_ids s.sides) with
                      | exception Barrier.Invalid_barrier _ -> None
                      | id -> Some id)
                in
                match id with
                | Some id when side.Verifier.s_count mod 32 = 0 ->
                    fired := Some id;
                    {
                      side with
                      Verifier.s_body =
                        Barrier.replace ~id ~count:side.Verifier.s_count
                          side.Verifier.s_body;
                      s_bar =
                        (match side.Verifier.s_bar with
                        | Some _ as b -> b
                        | None -> Some (id, side.Verifier.s_count));
                    }
                | _ -> side)
              s.sides
          in
          (match !fired with
          | Some id ->
              update
                (action "partial-barrier"
                   "%s: __syncthreads() -> bar.sync %d, %d" label id
                   (List.fold_left
                      (fun acc (sd : Verifier.side) ->
                        if String.equal sd.Verifier.s_label label then
                          sd.Verifier.s_count
                        else acc)
                      0 s.sides))
                { s with sides = sides' }
          | None -> ())
      | Diag.Shared_overlap _ ->
          let s = !st in
          let sides', total = rebase_dynamic_regions s.sides in
          if total <> 0 || s.smem_dynamic <> 0 then
            update
              (action "rebase-shared-regions"
                 "serial 16-aligned layout, %d dynamic bytes" total)
              { s with sides = sides'; smem_dynamic = total }
      | Diag.Barrier_id_collision { id; label2; _ } ->
          let s = !st in
          let used = all_side_ids s.sides in
          (match Barrier.fresh_id used with
          | exception Barrier.Invalid_barrier _ -> ()
          | to_id ->
              let sides' =
                side_set ~label:label2
                  (fun side ->
                    {
                      side with
                      Verifier.s_body =
                        renumber_barrier ~from_id:id ~to_id
                          side.Verifier.s_body;
                      s_bar =
                        (match side.Verifier.s_bar with
                        | Some (i, c) when i = id -> Some (to_id, c)
                        | b -> b);
                    })
                  s.sides
              in
              update
                (action "renumber-barrier" "%s: bar.sync id %d -> %d" label2
                   id to_id)
                { s with sides = sides' })
      | Diag.Barrier_id_out_of_range { id; _ } ->
          let s = !st in
          (match Barrier.fresh_id (all_side_ids s.sides) with
          | exception Barrier.Invalid_barrier _ -> ()
          | to_id ->
              let sides' =
                List.map
                  (fun (side : Verifier.side) ->
                    if has_barrier_id ~id side.Verifier.s_body then
                      {
                        side with
                        Verifier.s_body =
                          renumber_barrier ~from_id:id ~to_id
                            side.Verifier.s_body;
                      }
                    else side)
                  s.sides
              in
              update
                (action "renumber-barrier" "bar.sync id %d -> %d" id to_id)
                { s with sides = sides' })
      | Diag.Barrier_count_unaligned { id; count }
      | Diag.Barrier_count_mismatch { id; count; _ } ->
          let s = !st in
          let fixed = ref false in
          let sides' =
            List.map
              (fun (side : Verifier.side) ->
                if
                  has_barrier_id ~id side.Verifier.s_body
                  && side.Verifier.s_count mod 32 = 0
                then begin
                  let body' =
                    set_barrier_count ~id ~count:side.Verifier.s_count
                      side.Verifier.s_body
                  in
                  if not (Ast_util.equal_stmts side.Verifier.s_body body')
                  then begin
                    fixed := true;
                    { side with Verifier.s_body = body' }
                  end
                  else side
                end
                else side)
              s.sides
          in
          if !fixed then
            update
              (action "set-barrier-count"
                 "bar.sync %d count %d -> the owning side's partition" id
                 count)
              { s with sides = sides' }
      | Diag.Shared_race { label; _ } when d.severity = Diag.Error ->
          (* only a full-width side can use the threadIdx.x == 0 leader;
             a partial side's thread range may not contain thread 0 *)
          let s = !st in
          let fired = ref 0 in
          let sides' =
            side_set ~label
              (fun side ->
                if side.Verifier.s_count <> threads then side
                else begin
                  let shared =
                    List.fold_left
                      (fun acc (r : Verifier.region) ->
                        SS.add r.Verifier.r_name acc)
                      (shared_decl_names side.Verifier.s_body)
                      side.Verifier.s_shared
                  in
                  let mk_barrier () =
                    match side.Verifier.s_bar with
                    | Some (id, c) -> Ast.mk_stmt (Ast.Bar_sync (id, c))
                    | None -> Ast.mk_stmt Ast.Sync
                  in
                  let body', n =
                    guard_uniform_shared_writes
                      ~seeds:(SS.of_list side.Verifier.s_tainted)
                      ~shared ~mk_barrier side.Verifier.s_body
                  in
                  fired := n;
                  if n > 0 then { side with Verifier.s_body = body' }
                  else side
                end)
              s.sides
          in
          if !fired > 0 then
            update
              (action "guard-shared-write"
                 "%s: %d block-uniform shared write(s) behind threadIdx.x \
                  == 0 + barrier"
                 label !fired)
              { s with sides = sides' }
      | Diag.Over_budget { resource = Limits.By_registers; _ } ->
          let s = !st in
          let effective_regs =
            match s.bound with Some b -> min b regs | None -> regs
          in
          let smem = s.smem_dynamic + Verifier.static_smem s.sides in
          (match
             residency_reg_bound limits ~threads ~smem ~effective_regs
           with
          | None -> ()
          | Some r ->
              update
                (action "bound-registers"
                   "force register bound %d (%d threads on a %d-register \
                    SM)"
                   r threads limits.regs_per_sm)
                { s with bound = Some r })
      | Diag.Over_budget { resource = Limits.By_smem | Limits.By_threads
                                      | Limits.By_block_slots;
                           _ }
      | Diag.Divergent_barrier _ | Diag.Shared_race _ ->
          ())
    errs;
  (!st, !changed)

let repair_sides ?(limits = Limits.pascal_volta)
    ?(max_rounds = default_rounds) ~threads ~regs ~smem_dynamic
    (sides : Verifier.side list) : (sides_repaired, failure) result =
  let rec go st round =
    let eff_regs =
      match st.bound with Some b -> min b regs | None -> regs
    in
    let diags =
      Verifier.verify ~limits ~threads ~regs:eff_regs
        ~smem_dynamic:st.smem_dynamic st.sides
    in
    if Diag.is_clean diags then
      Ok
        {
          r_sides = st.sides;
          r_smem_dynamic = st.smem_dynamic;
          r_reg_bound = st.bound;
          r_actions = List.rev st.sacts;
          r_rounds = round;
          r_residual = diags;
        }
    else
      let errs = Diag.errors diags in
      if round >= max_rounds then Error (Budget_exhausted errs)
      else
        let st', changed = apply_sides_strategies limits ~threads ~regs st errs in
        if not changed then
          Error
            (if st.sacts = [] then Unserviceable errs else No_progress errs)
        else go st' (round + 1)
  in
  go { sides; smem_dynamic; bound = None; sacts = [] } 0

(** Diagnostic-driven repair of rejected fusions.

    When the static fusion-safety verifier refuses a fused kernel, this
    engine consumes the structured {!Hfuse_analysis.Diag.kind} list and
    applies the matching minimal transformation — renumber colliding
    [bar.sync] ids, rewrite full [__syncthreads()] into partition-scoped
    counted barriers, guard racing block-uniform shared writes behind a
    leader election plus a barrier, re-base overlapping shared regions,
    lower the register bound or shrink inter-kernel padding when a
    resource budget is blown — then re-runs the verifier, iterating to a
    bounded fixpoint.

    Repair is {e heuristic}: a transformation that satisfies the static
    verifier may still change the kernel's observable behaviour (e.g.
    electing a single writer when the racing stores were
    thread-dependent).  Callers that admit repaired fusions into
    search/profiling MUST gate them behind the differential oracle
    (unfused-vs-fused byte-for-byte); this library deliberately has no
    simulator dependency so every admission path supplies its own gate
    and unsound repairs fail closed back to rejection. *)

module Diag = Hfuse_analysis.Diag
module Verifier = Hfuse_analysis.Verifier

(** One applied transformation, for provenance and logs.  [a_tag] is a
    stable kebab-case strategy name; [a_detail] is human-readable. *)
type action = { a_tag : string; a_detail : string }

val pp_action : action Fmt.t

(** A fusion that now passes the static verifier. *)
type repaired = {
  fused : Hfuse_core.Hfuse.t;  (** regenerated from the repaired inputs *)
  reg_bound : int option;
      (** register bound the repair forces (the fusion is only clean
          under it); [None] when no resource repair was needed *)
  actions : action list;  (** applied transformations, in order *)
  rounds : int;  (** verify/repair iterations consumed *)
  residual : Diag.t list;  (** final diagnostics — warnings only *)
}

(** Why repair gave up; all constructors fail closed back to rejection. *)
type failure =
  | Unserviceable of Diag.t list
      (** no strategy matches any of the remaining errors *)
  | No_progress of Diag.t list
      (** strategies fired but left the inputs unchanged *)
  | Budget_exhausted of Diag.t list
      (** the fixpoint did not converge within [max_rounds] *)
  | Generate_failed of string
      (** the repaired inputs no longer fuse structurally *)

val pp_failure : failure Fmt.t

(** The diagnostics left standing when repair failed (empty for
    [Generate_failed]). *)
val failure_diags : failure -> Diag.t list

(** [attempt k1 k2] repairs a kernel pair whose fusion the verifier
    rejected: generate (unchecked), verify, dispatch strategies on the
    error kinds, transform the {e input} kernels (or the forced
    register bound / shared-memory padding), and regenerate — at most
    [max_rounds] (default 8) times.  Returns [Ok] only when the
    regenerated fusion is statically clean; a pair that was never
    broken comes back [Ok] with [actions = []].

    The inputs must already be configured at the partition's block
    dimensions (as inside {!Hfuse_core.Search.search} phase 1). *)
val attempt :
  ?limits:Hfuse_analysis.Limits.t ->
  ?max_rounds:int ->
  Hfuse_core.Kernel_info.t ->
  Hfuse_core.Kernel_info.t ->
  (repaired, failure) result

(** Sides-level repair for already-fused sources (the CLI's [check]
    verb), where no input kernels exist to regenerate.  Also services
    the two kinds {!attempt} can never see from [generate] — a full
    [__syncthreads()] inside a partial side becomes [bar.sync id,
    count], and overlapping dynamic shared regions are re-based
    serially (16-aligned). *)
type sides_repaired = {
  r_sides : Verifier.side list;
  r_smem_dynamic : int;  (** re-based total when regions moved *)
  r_reg_bound : int option;
  r_actions : action list;
  r_rounds : int;
  r_residual : Diag.t list;
}

val repair_sides :
  ?limits:Hfuse_analysis.Limits.t ->
  ?max_rounds:int ->
  threads:int ->
  regs:int ->
  smem_dynamic:int ->
  Verifier.side list ->
  (sides_repaired, failure) result

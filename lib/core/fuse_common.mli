(** Machinery shared by horizontal and vertical fusion: parameter
    merging, local/label renaming against a common pool, dynamic
    shared-memory layout, and thread-geometry prologues.  Both fusers
    consume kernels normalised by
    {!Hfuse_frontend.Inline.normalize_kernel}. *)

exception Fusion_error of string

val fail : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** One input kernel, prepared for splicing into a fused kernel. *)
type prepared = {
  info : Kernel_info.t;
  params : Cuda.Ast.param list;  (** renamed fused-kernel parameters *)
  param_map : (string * string) list;  (** (original, fused) names *)
  decls : Cuda.Ast.decl list;  (** renamed lifted local declarations *)
  body : Cuda.Ast.stmt list;  (** renamed non-declaration statements *)
  extern_shared : (string * Cuda.Ctype.t) list;
      (** renamed extern __shared__ arrays with element types *)
}

(** Split a lifted body into leading declarations and the rest.
    @raise Fusion_error when the body is not in lifted form. *)
val split_lifted :
  Cuda.Ast.stmt list -> Cuda.Ast.decl list * Cuda.Ast.stmt list

(** Rename one input kernel's parameters, locals and labels to be fresh
    w.r.t. the (accumulating) pool, and extract its extern shared
    arrays. *)
val prepare : Hfuse_frontend.Rename.pool -> Kernel_info.t -> prepared

(** Name of the unified dynamic shared-memory buffer in fused kernels. *)
val dyn_smem_name : string

(** Declarations binding a prepared kernel's extern-shared arrays as
    typed pointers at [offset] bytes into the unified buffer. *)
val bind_extern_shared : prepared -> offset:int -> Cuda.Ast.stmt list

val align_up : int -> int -> int

(** Prologue statements and builtin mapping that re-derive one input
    kernel's (threadIdx, blockDim) from the fused linear id (minus
    [base]), unflattened to the input's block shape — Fig. 4's
    prologue. *)
val geometry_prologue :
  Hfuse_frontend.Rename.pool ->
  tag:string ->
  base:Cuda.Ast.expr option ->
  block:int * int * int ->
  string ->
  Cuda.Ast.stmt list * Hfuse_frontend.Builtins.mapping

(** The fused linear thread id (Fig. 4 line 3), valid under any launch
    block shape. *)
val global_tid_init : Cuda.Ast.expr

(** Register estimate for a fused kernel: max over the two code paths
    (each thread runs one) plus the prologue's live values. *)
val fused_regs : int -> int -> int

(** The prologue-defined variables a geometry mapping substitutes for
    [threadIdx.*] — thread-dependent seeds for the verifier's taint
    analysis. *)
val mapping_tid_vars : Hfuse_frontend.Builtins.mapping -> string list

(** Assemble the fusion-safety verifier's view of one prepared input
    kernel: its share of the block ([count] threads), its (re)assigned
    barrier, its dynamic shared region at [dyn_offset] bytes into the
    unified buffer, its static [__shared__] declarations, and the
    thread-dependent seed variables [tainted]. *)
val verifier_side :
  ?bar:int * int ->
  label:string ->
  count:int ->
  dyn_offset:int ->
  tainted:string list ->
  prepared ->
  Cuda.Ast.stmt list ->
  Hfuse_analysis.Verifier.side

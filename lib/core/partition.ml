(* Thread-space partition enumeration (Section III-B).

   "HFUSE searches the block dimension of the first kernel at a
   granularity of 128, because using an irregular block dimension often
   breaks memory access patterns and causes CUDA kernels to run slower."

   A partition assigns d1 threads to the first kernel and d2 = d0 - d1 to
   the second.  Tunable kernels accept any multiple of 128 compatible
   with their constraint; fixed-dimension kernels (the crypto corpus)
   admit only the even split at their native sizes. *)

type t = { d1 : int; d2 : int }

let granularity = 128

let pp ppf { d1; d2 } = Fmt.pf ppf "%d/%d" d1 d2

(** All partitions of a [d0]-thread fused block between [k1] and [k2],
    respecting both kernels' tunability.  For two tunable kernels this is
    d1 = 128, 256, ..., d0 - 128 (Fig. 6, lines 5-6 and 22); when either
    kernel is fixed the only candidate (if any) is its native size —
    two fixed kernels ignore [d0] entirely, their native sizes dictate
    the split.  [max_threads] is the device's block-size cap (default
    1024, the Pascal/Volta value): no returned partition exceeds it. *)
let enumerate ?(max_threads = 1024) (k1 : Kernel_info.t) (k2 : Kernel_info.t)
    ~(d0 : int) : t list =
  let fits_k1 d =
    match k1.tunability with
    | Kernel_info.Fixed -> d = Kernel_info.threads_per_block k1
    | Kernel_info.Tunable { multiple_of } ->
        let _, ny, nz = k1.block in
        d > 0 && d mod multiple_of = 0 && d mod (max 1 (ny * nz)) = 0
  in
  let fits_k2 d =
    match k2.tunability with
    | Kernel_info.Fixed -> d = Kernel_info.threads_per_block k2
    | Kernel_info.Tunable { multiple_of } ->
        let _, ny, nz = k2.block in
        d > 0 && d mod multiple_of = 0 && d mod (max 1 (ny * nz)) = 0
  in
  let parts =
    match (k1.tunability, k2.tunability) with
    | Kernel_info.Fixed, Kernel_info.Fixed ->
        let d1 = Kernel_info.threads_per_block k1 in
        let d2 = Kernel_info.threads_per_block k2 in
        [ { d1; d2 } ]
    | Kernel_info.Fixed, Kernel_info.Tunable _ ->
        let d1 = Kernel_info.threads_per_block k1 in
        let d2 = d0 - d1 in
        if d2 > 0 && fits_k2 d2 then [ { d1; d2 } ] else []
    | Kernel_info.Tunable _, Kernel_info.Fixed ->
        let d2 = Kernel_info.threads_per_block k2 in
        let d1 = d0 - d2 in
        if d1 > 0 && fits_k1 d1 then [ { d1; d2 } ] else []
    | Kernel_info.Tunable _, Kernel_info.Tunable _ ->
        let rec go d1 acc =
          if d1 >= d0 then List.rev acc
          else
            let d2 = d0 - d1 in
            let acc =
              if fits_k1 d1 && fits_k2 d2 then { d1; d2 } :: acc else acc
            in
            go (d1 + granularity) acc
        in
        go granularity []
  in
  List.filter (fun { d1; d2 } -> d1 + d2 <= max_threads) parts

(** The even split used by the "Naive" variant of the evaluation
    (horizontal fusion without thread-space profiling, Section IV-A), or
    the fixed split when tunability forces one. *)
let naive ?max_threads (k1 : Kernel_info.t) (k2 : Kernel_info.t) ~(d0 : int)
    : t option =
  let parts = enumerate ?max_threads k1 k2 ~d0 in
  match parts with
  | [] -> None
  | [ p ] -> Some p
  | parts ->
      (* pick the partition closest to an even split *)
      let score p = abs (p.d1 - p.d2) in
      Some
        (List.fold_left
           (fun best p -> if score p < score best then p else best)
           (List.hd parts) parts)

(** Horizontal fusion — the Generate() algorithm of Fig. 5, extended to
    the 2-D thread geometry of the motivating example (Fig. 4) and to
    kernels with different grid dimensions.

    The fused kernel launches with a block of [d1 + d2] threads; threads
    [\[0, d1)] execute the first kernel's statements, [\[d1, d1+d2)] the
    second's.  A prologue re-derives each input kernel's
    [threadIdx]/[blockDim] from the fused linear thread id; every
    [__syncthreads()] becomes the partial barrier [bar.sync id_i, d_i];
    each body is guarded by [if (...) goto end_i]. *)

type t = {
  fn : Cuda.Ast.fn;  (** the fused kernel *)
  prog : Cuda.Ast.program;  (** translation unit containing [fn] *)
  d1 : int;  (** threads assigned to the first kernel *)
  d2 : int;  (** threads assigned to the second kernel *)
  grid : int;  (** fused grid dimension: max of the inputs' *)
  smem_dynamic : int;  (** unified dynamic shared memory, bytes *)
  regs : int;  (** register estimate (before any register bound) *)
  param_map1 : (string * string) list;
      (** kernel 1's (original, fused) parameter names, in order — the
          fused parameter list is kernel 1's then kernel 2's, so native
          argument lists concatenate directly *)
  param_map2 : (string * string) list;
  bar1 : int;  (** hardware barrier id rewriting kernel 1's syncs *)
  bar2 : int;
  src1 : Kernel_info.t;  (** the inputs, as configured for this fusion *)
  src2 : Kernel_info.t;
  sides : Hfuse_analysis.Verifier.side list;
      (** the fusion-safety verifier's view of the two fused sides *)
}

val threads_per_block : t -> int

(** The fused kernel as a launchable {!Kernel_info.t}. *)
val info : t -> Kernel_info.t

(** [generate k1 k2] horizontally fuses two kernels at their configured
    block dimensions.  Inputs are normalised internally (device calls
    inlined, declarations lifted, locals freshly renamed).  Unless
    [~check:false], the result is run through the static fusion-safety
    verifier and rejected when it finds an error.

    [smem_align] (default 16, a power of two) is the alignment of the
    second kernel's slice of the unified dynamic shared-memory buffer —
    the repair engine shrinks it when the inter-kernel padding pushes
    the fusion over the shared-memory budget.

    @raise Fuse_common.Fusion_error when a block dimension is not a
    warp-size multiple, the fused block exceeds the device's block-size
    cap ([limits.max_threads_per_block]), barrier ids are exhausted, or
    a body cannot be normalised.
    @raise Hfuse_analysis.Diag.Unsafe_fusion when [check] (the default)
    and the verifier reports an error-severity diagnostic. *)
val generate :
  ?check:bool ->
  ?limits:Occupancy.sm_limits ->
  ?smem_align:int ->
  Kernel_info.t ->
  Kernel_info.t ->
  t

(** Run the fusion-safety verifier on an already-generated fusion
    (never raises; returns all diagnostics including warnings). *)
val verify : ?limits:Occupancy.sm_limits -> t -> Hfuse_analysis.Diag.t list

(** Emit the fused kernel as CUDA source text. *)
val to_source : t -> string

(** Occupancy mathematics and the register bound of Fig. 6 (lines
    13-16).

    Occupancy — concurrent blocks per SM — is what horizontal fusion
    trades for thread-level parallelism (Section IV-C): the fused kernel
    needs more registers and shared memory than either input, and past a
    breakpoint fewer blocks fit.  The paper's remedy caps register usage
    at [r0] so the fused kernel keeps its inputs' block-level
    parallelism, at the cost of spilling.

    The limits record and residency arithmetic are shared with the
    fusion-safety verifier: the types here are equations on
    {!Hfuse_analysis.Limits}, so values flow freely between the two
    libraries. *)

(** Per-SM (and per-block) resource limits.  Mirrors [Gpusim.Arch] but
    kept dependency-free so the core library does not depend on the
    simulator. *)
type sm_limits = Hfuse_analysis.Limits.t = {
  regs_per_sm : int;  (** SMNRegs; 64K on Pascal and Volta *)
  smem_per_sm : int;  (** SMShMem; 96K *)
  max_threads_per_sm : int;  (** SMNThreads; 2048 *)
  max_blocks_per_sm : int;  (** hardware block slots; 32 *)
  reg_alloc_granularity : int;  (** allocation unit per thread; 8 *)
  max_regs_per_thread : int;  (** 255 *)
  max_threads_per_block : int;  (** hardware block-size cap; 1024 *)
}

val pascal_volta_limits : sm_limits

(** Round a register count up to the hardware allocation granularity. *)
val round_up_regs : sm_limits -> int -> int

(** Concurrent blocks per SM for a kernel with the given per-thread
    registers, per-block threads and shared memory; 0 when one block
    cannot fit. *)
val blocks_per_sm : sm_limits -> regs:int -> threads:int -> smem:int -> int

(** Resident warps over maximum warps, in [0, 1]. *)
val theoretical_occupancy :
  sm_limits -> regs:int -> threads:int -> smem:int -> float

(** The register bound r0 of Fig. 6 lines 13-16:
    {[ b1 <- SMNRegs / (d1 * NRegs(S1))
       b2 <- SMNRegs / (d2 * NRegs(S2))
       b0 <- min(min(b1, b2), SMShMem / ShMem(F), SMNThreads / d0)
       r0 <- SMNRegs / (b0 * d0) ]}
    Uses raw register counts, as the paper's formula does.  [None] when
    even one fused block cannot fit (b0 = 0). *)
val register_bound :
  sm_limits ->
  d1:int -> regs1:int -> d2:int -> regs2:int -> fused_smem:int ->
  int option

(** Which resource limits a kernel's occupancy (reports/ablations). *)
type limiter = Hfuse_analysis.Limits.limiter =
  | By_registers
  | By_threads
  | By_smem
  | By_block_slots

(** The binding constraint of {!blocks_per_sm}.  A kernel that uses no
    shared memory is never reported [By_smem]; a zero-smem kernel capped
    by the 32-block slot limit reports [By_block_slots]. *)
val limiting_resource :
  sm_limits -> regs:int -> threads:int -> smem:int -> limiter

val pp_limiter : limiter Fmt.t

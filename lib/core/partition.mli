(** Thread-space partition enumeration (Section III-B): HFuse searches
    the first kernel's block dimension at a granularity of 128, "because
    using an irregular block dimension often breaks memory access
    patterns". *)

type t = { d1 : int; d2 : int }

val granularity : int
(** 128, per the paper. *)

val pp : t Fmt.t

(** All partitions of a [d0]-thread fused block, respecting both
    kernels' tunability: for two tunable kernels, d1 = 128, 256, ...,
    d0 - 128 (Fig. 6 lines 5-6 and 22); a fixed-dimension kernel pins
    its own share.  Empty when no legal partition exists.

    When both kernels are fixed, [d0] is ignored — the native sizes
    dictate the (single) split; callers wanting a specific total must
    check the returned partition.  [max_threads] is the device's
    block-size cap (default 1024, the Pascal/Volta value): partitions
    whose total exceeds it are dropped. *)
val enumerate :
  ?max_threads:int -> Kernel_info.t -> Kernel_info.t -> d0:int -> t list

(** The even split used by the evaluation's Naive variant (horizontal
    fusion without thread-space profiling), or the closest legal
    partition to it.  [d0] is ignored for two fixed kernels, as in
    {!enumerate}. *)
val naive :
  ?max_threads:int -> Kernel_info.t -> Kernel_info.t -> d0:int -> t option

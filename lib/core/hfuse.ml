(* Horizontal fusion — the Generate() algorithm of Fig. 5, extended to
   the 2-D thread geometry of the motivating example (Fig. 4) and to
   kernels with different grid dimensions.

   Given two prepared kernels with chosen block dimensions d1 and d2, the
   fused kernel:
   - launches with a block of d1 + d2 threads; threads [0, d1) execute
     K1's statements, threads [d1, d1+d2) execute K2's;
   - computes each input kernel's (threadIdx, blockDim) from the fused
     linear thread id in a prologue (Fig. 4 lines 2-23);
   - guards each input kernel's statements with
     [if (global_tid >= d1) goto K1_end;] / [if (global_tid < d1) goto
     K2_end;] (Fig. 5 lines 7-12);
   - replaces every [__syncthreads()] with the partial barrier
     [bar.sync id_i, d_i] (Fig. 5 lines 5-6). *)

open Cuda
open Hfuse_frontend

type t = {
  fn : Ast.fn;  (** the fused kernel *)
  prog : Ast.program;  (** translation unit containing [fn] *)
  d1 : int;  (** threads assigned to the first kernel *)
  d2 : int;  (** threads assigned to the second kernel *)
  grid : int;  (** fused grid dimension *)
  smem_dynamic : int;  (** dynamic shared memory of the fused kernel *)
  regs : int;  (** register estimate (before any register bound) *)
  param_map1 : (string * string) list;
      (** K1's (original, fused) parameter names *)
  param_map2 : (string * string) list;
  bar1 : int;  (** hardware barrier id used for K1's syncs *)
  bar2 : int;
  src1 : Kernel_info.t;  (** the inputs, as configured for this fusion *)
  src2 : Kernel_info.t;
  sides : Hfuse_analysis.Verifier.side list;
      (** the verifier's view of the two fused sides *)
}

let threads_per_block t = t.d1 + t.d2

let info t : Kernel_info.t =
  {
    Kernel_info.fn = t.fn;
    prog = t.prog;
    block = (t.d1 + t.d2, 1, 1);
    grid = t.grid;
    smem_dynamic = t.smem_dynamic;
    regs = t.regs;
    tunability = Kernel_info.Fixed;
  }

(** Run the fusion-safety verifier on an already-generated fusion. *)
let verify ?limits (t : t) : Hfuse_analysis.Diag.t list =
  Hfuse_analysis.Verifier.verify ?limits ~threads:(t.d1 + t.d2) ~regs:t.regs
    ~smem_dynamic:t.smem_dynamic t.sides

(** [generate k1 k2] horizontally fuses two kernels at their configured
    block dimensions.  Raises {!Fuse_common.Fusion_error} on structural
    problems (unliftable bodies, barrier-id exhaustion, thread counts not
    multiples of the warp size), and — unless [~check:false] —
    {!Hfuse_analysis.Diag.Unsafe_fusion} when the static fusion-safety
    verifier finds an error in the result. *)
let generate ?(check = true) ?(limits = Occupancy.pascal_volta_limits)
    ?(smem_align = 16) (k1 : Kernel_info.t) (k2 : Kernel_info.t) : t =
  if smem_align <= 0 || smem_align land (smem_align - 1) <> 0 then
    Fuse_common.fail "shared-memory alignment %d is not a power of two"
      smem_align;
  let d1 = Kernel_info.threads_per_block k1 in
  let d2 = Kernel_info.threads_per_block k2 in
  if d1 mod 32 <> 0 || d2 mod 32 <> 0 then
    Fuse_common.fail
      "block dimensions must be multiples of the warp size (got %d and %d)"
      d1 d2;
  if d1 + d2 > limits.Occupancy.max_threads_per_block then
    Fuse_common.fail
      "fused block of %d threads exceeds the %d-thread hardware limit"
      (d1 + d2) limits.Occupancy.max_threads_per_block;
  (* normalise both inputs *)
  let f1 = Inline.normalize_kernel k1.prog k1.fn in
  let f2 = Inline.normalize_kernel k2.prog k2.fn in
  let pool = Rename.create () in
  Rename.reserve pool Fuse_common.dyn_smem_name;
  let p1 = Fuse_common.prepare pool { k1 with fn = f1 } in
  let p2 = Fuse_common.prepare pool { k2 with fn = f2 } in
  let global_tid = Rename.fresh pool "global_tid" in
  let l1 = Rename.fresh pool "K1_end" in
  let l2 = Rename.fresh pool "K2_end" in
  (* prologue: fused linear tid + per-kernel geometry *)
  let geo1, map1 =
    Fuse_common.geometry_prologue pool ~tag:"1" ~base:None ~block:k1.block
      global_tid
  in
  let geo2, map2 =
    Fuse_common.geometry_prologue pool ~tag:"2"
      ~base:(Some (Ast.int_lit d1))
      ~block:k2.block global_tid
  in
  (* barriers: give each side its own id, avoiding ids already present *)
  let used = Barrier.used_ids p1.body @ Barrier.used_ids p2.body in
  let bar1 = Barrier.fresh_id used in
  let bar2 = Barrier.fresh_id (bar1 :: used) in
  let body1 =
    p1.body
    |> Builtins.replace map1
    |> Barrier.replace ~id:bar1 ~count:d1
  in
  let body2 =
    p2.body
    |> Builtins.replace map2
    |> Barrier.replace ~id:bar2 ~count:d2
  in
  (* dynamic shared memory layout: K1 at offset 0, K2 after, aligned *)
  let off2 = Fuse_common.align_up k1.smem_dynamic smem_align in
  let smem_dynamic = off2 + k2.smem_dynamic in
  let dyn_decls =
    if p1.extern_shared = [] && p2.extern_shared = [] then []
    else
      Ast.decl ~storage:Ast.Shared_extern Fuse_common.dyn_smem_name
        (Ctype.Array (Ctype.UChar, None))
      :: (Fuse_common.bind_extern_shared p1 ~offset:0
         @ Fuse_common.bind_extern_shared p2 ~offset:off2)
  in
  (* grid: take the max; guard each side when its grid is smaller *)
  let grid = max k1.grid k2.grid in
  let open Ast in
  let guard ~skip_when label = mk_stmt (If (skip_when, [ mk_stmt (Goto label) ], [])) in
  let in_k1 = Binop (Ge, Var global_tid, int_lit d1) in
  let in_k2 = Binop (Lt, Var global_tid, int_lit d1) in
  let or_grid cond gk =
    if gk < grid then
      Binop (Lor, cond, Binop (Ge, Builtin (Block_idx X), int_lit gk))
    else cond
  in
  let decl_stmts ds = List.map (fun d -> mk_stmt (Decl d)) ds in
  let body =
    (mk_stmt
       (Decl
          {
            d_name = global_tid;
            (* threadIdx/blockDim are unsigned; the substituted
               geometry variables must be too, or the input kernel's
               unsigned arithmetic turns signed after fusion *)
            d_type = Ctype.UInt;
            d_storage = Local;
            d_init = Some Fuse_common.global_tid_init;
          })
    :: geo1)
    @ geo2 @ dyn_decls
    @ decl_stmts (p1.decls @ p2.decls)
    @ (guard ~skip_when:(or_grid in_k1 k1.grid) l1 :: body1)
    @ [ mk_stmt (Label l1) ]
    @ (guard ~skip_when:(or_grid in_k2 k2.grid) l2 :: body2)
    @ [ mk_stmt (Label l2) ]
  in
  let fn =
    {
      f_name = k1.fn.f_name ^ "_" ^ k2.fn.f_name ^ "_fused";
      f_kind = Global;
      f_params = p1.params @ p2.params;
      f_ret = Ctype.Void;
      f_body = body;
      f_launch_bounds = None;
    }
  in
  let prog = { Ast.defines = []; functions = [ fn ] } in
  let side1 =
    Fuse_common.verifier_side ~bar:(bar1, d1) ~label:k1.fn.f_name ~count:d1
      ~dyn_offset:0
      ~tainted:(global_tid :: Fuse_common.mapping_tid_vars map1)
      p1 body1
  in
  let side2 =
    Fuse_common.verifier_side ~bar:(bar2, d2) ~label:k2.fn.f_name ~count:d2
      ~dyn_offset:off2
      ~tainted:(global_tid :: Fuse_common.mapping_tid_vars map2)
      p2 body2
  in
  let t =
    {
      fn;
      prog;
      d1;
      d2;
      grid;
      smem_dynamic;
      regs = Fuse_common.fused_regs k1.regs k2.regs;
      param_map1 = p1.param_map;
      param_map2 = p2.param_map;
      bar1;
      bar2;
      src1 = k1;
      src2 = k2;
      sides = [ side1; side2 ];
    }
  in
  if check then Hfuse_analysis.Diag.raise_if_unsafe (verify ~limits t);
  t

(** Emit the fused kernel as CUDA source text. *)
let to_source (t : t) : string = Pretty.program_to_string t.prog

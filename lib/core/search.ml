(* The fusion-configuration search — Main() of Fig. 6.

   For every thread-space partition (at granularity 128), generate the
   fused kernel and profile it twice: once as-is and once under the
   register bound r0 computed by {!Occupancy.register_bound}.  Keep the
   fastest (kernel, bound) pair seen.

   The search runs in two phases.  Phase 1 is serial: enumerate
   partitions, generate and verify the fused kernels, and compute the
   register bounds — this builds the candidate list in search order.
   Phase 2 evaluates the candidates.  By default it maps the [profile]
   callback over them one by one; a caller may instead supply
   [profile_batch], which receives the whole candidate list at once and
   may evaluate it however it likes (the harness fans the pure timing
   runs out over a domain pool and consults a persistent cache).  Either
   way the times come back in candidate order, so [best] tie-breaking —
   first strictly-fastest candidate in search order wins — is identical
   regardless of evaluation strategy.

   Profiling is a callback so the same algorithm runs against the cycle-
   level simulator (the harness), against synthetic cost functions
   (tests), or — in a deployment with real hardware — against nvcc+nvprof. *)

type config = { partition : Partition.t; reg_bound : int option }

let pp_config ppf c =
  Fmt.pf ppf "partition %a%a" Partition.pp c.partition
    (fun ppf -> function
      | None -> Fmt.string ppf ", no register bound"
      | Some r -> Fmt.pf ppf ", register bound %d" r)
    c.reg_bound

(** One profiled candidate.  [repaired] marks provenance: the partition
    was first rejected by the verifier, then admitted by the repair
    engine (and its caller's differential soundness gate). *)
type candidate = {
  fused : Hfuse.t;
  config : config;
  time : float;
  repaired : bool;
}

type result = {
  best : candidate;
  all : candidate list;  (** every profiled candidate, search order *)
  rejected : (Partition.t * Hfuse_analysis.Diag.t list) list;
      (** partitions the fusion-safety verifier refused — and, when a
          [repair] callback ran, repair could not soundly fix — with
          their original diagnostics (never profiled) *)
  pruned : (Hfuse.t * config * float) list;
      (** verified candidates the phase-1.5 ranking cut before
          profiling (search order, with their model scores); empty
          unless both [rank] and [top_k] were given and binding *)
  scores : float list;
      (** model scores of the profiled candidates, aligned with [all];
          empty when no [rank] callback was supplied *)
  admitted : int;  (** partitions the verifier accepted directly *)
  repaired : int;  (** partitions admitted only via repair *)
}

(** What a [repair] callback hands back when it can fix a rejected
    partition: the repaired fused kernel (regenerated from transformed
    inputs) and the register bound the repair forces, if any. *)
type repair_outcome = { r_fused : Hfuse.t; r_reg_bound : int option }

exception No_valid_partition of string

(** [search ~profile ~d0 k1 k2] runs the Fig. 6 algorithm.

    [profile fused ~reg_bound] must return the running time (any unit, as
    long as it is consistent) of the fused kernel compiled/launched under
    the given register bound.

    @param limits  SM resource limits used to compute the register bound
                   (default: the Pascal/Volta values the paper uses).
    @param profile_batch  when given, evaluates the whole candidate list
                   instead of per-candidate [profile] calls; must return
                   one time per candidate, in order.
    @param rank    analytical cost model: scores for the whole verified
                   candidate list (lower is better, same order).  Scores
                   are recorded in the result; with [top_k] they drive
                   pruning.
    @param top_k   profile only the [top_k] best-scored candidates
                   (phase 1.5).  Requires [rank]; ignored without it.
                   Ties keep search order, the survivors are profiled in
                   search order, and a [top_k] at or above the candidate
                   count is a no-op — the search is then bit-identical
                   to the exhaustive one.
    @param d0      desired fused block dimension (paper default: 1024 for
                   tunable pairs; for fixed pairs the partition dictates
                   it and [d0] is ignored).
    @param repair  called on each verifier-rejected partition with the
                   configured kernels and the diagnostics; returning
                   [Some outcome] admits the (already re-verified and
                   soundness-gated) repaired fusion as a candidate with
                   [repaired = true], [None] keeps the rejection.
    @param on_reject  called once per finally-rejected partition (after
                   any [repair] attempt), in search order — the hook the
                   harness uses to build rejection histograms even when
                   every partition is rejected and the search raises.
    @raise No_valid_partition when the pair admits no thread-space
           partition (e.g. two fixed kernels whose sum exceeds 1024). *)
let search ?(limits = Occupancy.pascal_volta_limits)
    ?(profile_batch : ((Hfuse.t * config) list -> float list) option)
    ?(rank : ((Hfuse.t * config) list -> float list) option)
    ?(top_k : int option)
    ?(repair :
       (k1:Kernel_info.t ->
       k2:Kernel_info.t ->
       Hfuse_analysis.Diag.t list ->
       repair_outcome option)
       option)
    ?(on_reject : (Partition.t -> Hfuse_analysis.Diag.t list -> unit) option)
    ~(profile : Hfuse.t -> reg_bound:int option -> float) ~(d0 : int)
    (k1 : Kernel_info.t) (k2 : Kernel_info.t) : result =
  let partitions =
    Partition.enumerate
      ~max_threads:limits.Occupancy.max_threads_per_block k1 k2 ~d0
  in
  if partitions = [] then
    raise
      (No_valid_partition
         (Fmt.str "%s + %s admit no thread-space partition for d0 = %d"
            k1.fn.f_name k2.fn.f_name d0));
  (* phase 1 (serial): generate, verify, and collect the candidate
     configurations in search order *)
  let pending = ref [] in
  let rejected = ref [] in
  let admitted_n = ref 0 and repaired_n = ref 0 in
  let enqueue ?(repaired = false) fused config =
    pending := (fused, config, repaired) :: !pending
  in
  let reject partition ds =
    (match on_reject with Some f -> f partition ds | None -> ());
    rejected := (partition, ds) :: !rejected
  in
  List.iter
    (fun ({ Partition.d1; d2 } as partition) ->
      let k1c = Kernel_info.with_block_dim k1 d1 in
      let k2c = Kernel_info.with_block_dim k2 d2 in
      (* the verifier gates profiling: an unsafe partition (deadlocking
         barriers, shared-memory races, over-budget resources) is
         recorded and never handed to the simulator *)
      match Hfuse.generate ~limits k1c k2c with
      | exception Hfuse_analysis.Diag.Unsafe_fusion ds -> (
          (* the repair hook gets one shot at a rejected partition; its
             outcome must already be re-verified and soundness-gated,
             so a [Some] is admitted as-is (under the forced register
             bound) and a [None] keeps the rejection *)
          match repair with
          | None -> reject partition ds
          | Some f -> (
              match f ~k1:k1c ~k2:k2c ds with
              | Some o ->
                  incr repaired_n;
                  enqueue ~repaired:true o.r_fused
                    { partition; reg_bound = o.r_reg_bound }
              | None -> reject partition ds))
      | fused -> (
          incr admitted_n;
          (* line 8: the unbounded variant *)
          enqueue fused { partition; reg_bound = None };
          (* lines 13-17: compute r0 for the bounded variant *)
          let fused_smem = Kernel_info.smem_total (Hfuse.info fused) in
          match
            Occupancy.register_bound limits ~d1 ~regs1:k1.regs ~d2
              ~regs2:k2.regs ~fused_smem
          with
          | None -> ()
          | Some r0 when r0 >= fused.Hfuse.regs ->
              (* the bound would not constrain the kernel: the compiler
                 already uses fewer registers, so the bounded build is
                 byte-identical to the unbounded one — profiling it
                 again would double the simulator work to learn
                 nothing, and reporting [reg_bound = Some r0] would be
                 misleading.  The unbounded candidate above already
                 covers this configuration. *)
              ()
          | Some r0 -> enqueue fused { partition; reg_bound = Some r0 }))
    partitions;
  let rejected = List.rev !rejected in
  let pending = List.rev !pending in
  if pending = [] then
    raise
      (No_valid_partition
         (Fmt.str
            "%s + %s: the fusion-safety verifier rejected all %d \
             partition(s)"
            k1.fn.f_name k2.fn.f_name
            (List.length rejected)));
  (* phase 1.5: analytical ranking.  Scores are computed whenever the
     caller supplies a model (they are cheap and reported alongside the
     simulated times); pruning happens only under a binding [top_k] —
     keep the k best-scored candidates, break score ties in favour of
     search order, and preserve search order among the survivors so
     phase 2 and the [best] tie-breaking are unchanged. *)
  let n = List.length pending in
  let pairs_of ps = List.map (fun (fused, config, _) -> (fused, config)) ps in
  let scores =
    match rank with
    | None -> []
    | Some f ->
        let ss = f (pairs_of pending) in
        if List.length ss <> n then
          invalid_arg
            (Fmt.str
               "Search.search: rank returned %d score(s) for %d \
                candidate(s)"
               (List.length ss) n);
        ss
  in
  let pending, scores, pruned =
    match top_k with
    | Some k when scores <> [] && max 1 k < n ->
        let k = max 1 k in
        let sarr = Array.of_list scores in
        let order = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            match Float.compare sarr.(i) sarr.(j) with
            | 0 -> compare i j
            | c -> c)
          order;
        let keep = Array.make n false in
        Array.iteri (fun pos i -> if pos < k then keep.(i) <- true) order;
        let parr = Array.of_list pending in
        let kept = ref [] and kept_scores = ref [] and cut = ref [] in
        for i = n - 1 downto 0 do
          if keep.(i) then begin
            kept := parr.(i) :: !kept;
            kept_scores := sarr.(i) :: !kept_scores
          end
          else
            let fused, config, _ = parr.(i) in
            cut := (fused, config, sarr.(i)) :: !cut
        done;
        (!kept, !kept_scores, !cut)
    | _ -> (pending, scores, [])
  in
  (* phase 2: evaluate the candidates — batched when the caller provides
     an evaluator (parallel timing, persistent cache), serial otherwise *)
  let times =
    match profile_batch with
    | Some f ->
        let ts = f (pairs_of pending) in
        if List.length ts <> List.length pending then
          invalid_arg
            (Fmt.str
               "Search.search: profile_batch returned %d time(s) for %d \
                candidate(s)"
               (List.length ts) (List.length pending));
        ts
    | None ->
        List.map
          (fun (fused, config, _) ->
            profile fused ~reg_bound:config.reg_bound)
          pending
  in
  let all =
    List.map2
      (fun (fused, config, repaired) time ->
        { fused; config; time; repaired })
      pending times
  in
  let best =
    List.fold_left
      (fun best c -> if c.time < best.time then c else best)
      (List.hd all) (List.tl all)
  in
  {
    best;
    all;
    rejected;
    pruned;
    scores;
    admitted = !admitted_n;
    repaired = !repaired_n;
  }

(** The Naive variant of the evaluation: even partition, no profiling,
    no register bound. *)
let naive ~(d0 : int) (k1 : Kernel_info.t) (k2 : Kernel_info.t) :
    Hfuse.t option =
  match Partition.naive k1 k2 ~d0 with
  | None -> None
  | Some { Partition.d1; d2 } ->
      let k1c = Kernel_info.with_block_dim k1 d1 in
      let k2c = Kernel_info.with_block_dim k2 d2 in
      Some (Hfuse.generate k1c k2c)

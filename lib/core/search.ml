(* The fusion-configuration search — Main() of Fig. 6.

   For every thread-space partition (at granularity 128), generate the
   fused kernel and profile it twice: once as-is and once under the
   register bound r0 computed by {!Occupancy.register_bound}.  Keep the
   fastest (kernel, bound) pair seen.

   The search runs in two phases.  Phase 1 is serial: enumerate
   partitions, generate and verify the fused kernels, and compute the
   register bounds — this builds the candidate list in search order.
   Phase 2 evaluates the candidates.  By default it maps the [profile]
   callback over them one by one; a caller may instead supply
   [profile_batch], which receives the whole candidate list at once and
   may evaluate it however it likes (the harness fans the pure timing
   runs out over a domain pool and consults a persistent cache).  Either
   way the times come back in candidate order, so [best] tie-breaking —
   first strictly-fastest candidate in search order wins — is identical
   regardless of evaluation strategy.

   Profiling is a callback so the same algorithm runs against the cycle-
   level simulator (the harness), against synthetic cost functions
   (tests), or — in a deployment with real hardware — against nvcc+nvprof. *)

type config = { partition : Partition.t; reg_bound : int option }

let pp_config ppf c =
  Fmt.pf ppf "partition %a%a" Partition.pp c.partition
    (fun ppf -> function
      | None -> Fmt.string ppf ", no register bound"
      | Some r -> Fmt.pf ppf ", register bound %d" r)
    c.reg_bound

(** One profiled candidate. *)
type candidate = { fused : Hfuse.t; config : config; time : float }

type result = {
  best : candidate;
  all : candidate list;  (** every profiled candidate, search order *)
  rejected : (Partition.t * Hfuse_analysis.Diag.t list) list;
      (** partitions the fusion-safety verifier refused (never
          profiled), with their diagnostics *)
  pruned : (Hfuse.t * config * float) list;
      (** verified candidates the phase-1.5 ranking cut before
          profiling (search order, with their model scores); empty
          unless both [rank] and [top_k] were given and binding *)
  scores : float list;
      (** model scores of the profiled candidates, aligned with [all];
          empty when no [rank] callback was supplied *)
}

exception No_valid_partition of string

(** [search ~profile ~d0 k1 k2] runs the Fig. 6 algorithm.

    [profile fused ~reg_bound] must return the running time (any unit, as
    long as it is consistent) of the fused kernel compiled/launched under
    the given register bound.

    @param limits  SM resource limits used to compute the register bound
                   (default: the Pascal/Volta values the paper uses).
    @param profile_batch  when given, evaluates the whole candidate list
                   instead of per-candidate [profile] calls; must return
                   one time per candidate, in order.
    @param rank    analytical cost model: scores for the whole verified
                   candidate list (lower is better, same order).  Scores
                   are recorded in the result; with [top_k] they drive
                   pruning.
    @param top_k   profile only the [top_k] best-scored candidates
                   (phase 1.5).  Requires [rank]; ignored without it.
                   Ties keep search order, the survivors are profiled in
                   search order, and a [top_k] at or above the candidate
                   count is a no-op — the search is then bit-identical
                   to the exhaustive one.
    @param d0      desired fused block dimension (paper default: 1024 for
                   tunable pairs; for fixed pairs the partition dictates
                   it and [d0] is ignored).
    @raise No_valid_partition when the pair admits no thread-space
           partition (e.g. two fixed kernels whose sum exceeds 1024). *)
let search ?(limits = Occupancy.pascal_volta_limits)
    ?(profile_batch : ((Hfuse.t * config) list -> float list) option)
    ?(rank : ((Hfuse.t * config) list -> float list) option)
    ?(top_k : int option)
    ~(profile : Hfuse.t -> reg_bound:int option -> float) ~(d0 : int)
    (k1 : Kernel_info.t) (k2 : Kernel_info.t) : result =
  let partitions =
    Partition.enumerate
      ~max_threads:limits.Occupancy.max_threads_per_block k1 k2 ~d0
  in
  if partitions = [] then
    raise
      (No_valid_partition
         (Fmt.str "%s + %s admit no thread-space partition for d0 = %d"
            k1.fn.f_name k2.fn.f_name d0));
  (* phase 1 (serial): generate, verify, and collect the candidate
     configurations in search order *)
  let pending = ref [] in
  let rejected = ref [] in
  let enqueue fused config = pending := (fused, config) :: !pending in
  List.iter
    (fun ({ Partition.d1; d2 } as partition) ->
      let k1c = Kernel_info.with_block_dim k1 d1 in
      let k2c = Kernel_info.with_block_dim k2 d2 in
      (* the verifier gates profiling: an unsafe partition (deadlocking
         barriers, shared-memory races, over-budget resources) is
         recorded and never handed to the simulator *)
      match Hfuse.generate ~limits k1c k2c with
      | exception Hfuse_analysis.Diag.Unsafe_fusion ds ->
          rejected := (partition, ds) :: !rejected
      | fused -> (
          (* line 8: the unbounded variant *)
          enqueue fused { partition; reg_bound = None };
          (* lines 13-17: compute r0 for the bounded variant *)
          let fused_smem = Kernel_info.smem_total (Hfuse.info fused) in
          match
            Occupancy.register_bound limits ~d1 ~regs1:k1.regs ~d2
              ~regs2:k2.regs ~fused_smem
          with
          | None -> ()
          | Some r0 when r0 >= fused.Hfuse.regs ->
              (* the bound would not constrain the kernel: the compiler
                 already uses fewer registers, so the bounded build is
                 byte-identical to the unbounded one — profiling it
                 again would double the simulator work to learn
                 nothing, and reporting [reg_bound = Some r0] would be
                 misleading.  The unbounded candidate above already
                 covers this configuration. *)
              ()
          | Some r0 -> enqueue fused { partition; reg_bound = Some r0 }))
    partitions;
  let rejected = List.rev !rejected in
  let pending = List.rev !pending in
  if pending = [] then
    raise
      (No_valid_partition
         (Fmt.str
            "%s + %s: the fusion-safety verifier rejected all %d \
             partition(s)"
            k1.fn.f_name k2.fn.f_name
            (List.length rejected)));
  (* phase 1.5: analytical ranking.  Scores are computed whenever the
     caller supplies a model (they are cheap and reported alongside the
     simulated times); pruning happens only under a binding [top_k] —
     keep the k best-scored candidates, break score ties in favour of
     search order, and preserve search order among the survivors so
     phase 2 and the [best] tie-breaking are unchanged. *)
  let n = List.length pending in
  let scores =
    match rank with
    | None -> []
    | Some f ->
        let ss = f pending in
        if List.length ss <> n then
          invalid_arg
            (Fmt.str
               "Search.search: rank returned %d score(s) for %d \
                candidate(s)"
               (List.length ss) n);
        ss
  in
  let pending, scores, pruned =
    match top_k with
    | Some k when scores <> [] && max 1 k < n ->
        let k = max 1 k in
        let sarr = Array.of_list scores in
        let order = Array.init n (fun i -> i) in
        Array.sort
          (fun i j ->
            match Float.compare sarr.(i) sarr.(j) with
            | 0 -> compare i j
            | c -> c)
          order;
        let keep = Array.make n false in
        Array.iteri (fun pos i -> if pos < k then keep.(i) <- true) order;
        let parr = Array.of_list pending in
        let kept = ref [] and kept_scores = ref [] and cut = ref [] in
        for i = n - 1 downto 0 do
          if keep.(i) then begin
            kept := parr.(i) :: !kept;
            kept_scores := sarr.(i) :: !kept_scores
          end
          else
            let fused, config = parr.(i) in
            cut := (fused, config, sarr.(i)) :: !cut
        done;
        (!kept, !kept_scores, !cut)
    | _ -> (pending, scores, [])
  in
  (* phase 2: evaluate the candidates — batched when the caller provides
     an evaluator (parallel timing, persistent cache), serial otherwise *)
  let times =
    match profile_batch with
    | Some f ->
        let ts = f pending in
        if List.length ts <> List.length pending then
          invalid_arg
            (Fmt.str
               "Search.search: profile_batch returned %d time(s) for %d \
                candidate(s)"
               (List.length ts) (List.length pending));
        ts
    | None ->
        List.map
          (fun (fused, config) -> profile fused ~reg_bound:config.reg_bound)
          pending
  in
  let all =
    List.map2 (fun (fused, config) time -> { fused; config; time }) pending
      times
  in
  let best =
    List.fold_left
      (fun best c -> if c.time < best.time then c else best)
      (List.hd all) (List.tl all)
  in
  { best; all; rejected; pruned; scores }

(** The Naive variant of the evaluation: even partition, no profiling,
    no register bound. *)
let naive ~(d0 : int) (k1 : Kernel_info.t) (k2 : Kernel_info.t) :
    Hfuse.t option =
  match Partition.naive k1 k2 ~d0 with
  | None -> None
  | Some { Partition.d1; d2 } ->
      let k1c = Kernel_info.with_block_dim k1 d1 in
      let k2c = Kernel_info.with_block_dim k2 d2 in
      Some (Hfuse.generate k1c k2c)

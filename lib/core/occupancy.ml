(* Occupancy mathematics and the register bound of Fig. 6 (lines 13-16).

   Occupancy — how many blocks an SM can host concurrently — is what
   horizontal fusion trades away for thread-level parallelism
   (Section IV-C).  The fused kernel needs more registers and shared
   memory than either original; when the extra requirement crosses a
   breakpoint, fewer blocks fit per SM.  The paper's remedy is to cap the
   register usage ([r0]) so the fused kernel keeps the block-level
   parallelism of its inputs, at the cost of spilling.

   The limits record and the residency arithmetic live in
   {!Hfuse_analysis.Limits} (so the fusion-safety verifier, which sits
   below this library, can share them); this module re-exports them
   under their historical names and keeps the register-bound computation
   that only the search needs. *)

type sm_limits = Hfuse_analysis.Limits.t = {
  regs_per_sm : int;  (** SMNRegs; 64K for Pascal and Volta *)
  smem_per_sm : int;  (** SMShMem; 96K for Pascal and Volta *)
  max_threads_per_sm : int;  (** SMNThreads; 2048 for Pascal and Volta *)
  max_blocks_per_sm : int;  (** hardware block-slot limit; 32 *)
  reg_alloc_granularity : int;
      (** registers are allocated in units of this per thread *)
  max_regs_per_thread : int;  (** 255 on both architectures *)
  max_threads_per_block : int;  (** hardware block-size cap; 1024 *)
}

let pascal_volta_limits = Hfuse_analysis.Limits.pascal_volta
let round_up_regs = Hfuse_analysis.Limits.round_up_regs
let blocks_per_sm = Hfuse_analysis.Limits.blocks_per_sm

(** Theoretical occupancy: resident warps / maximum warps. *)
let theoretical_occupancy (lim : sm_limits) ~regs ~threads ~smem : float =
  let b = blocks_per_sm lim ~regs ~threads ~smem in
  float_of_int (b * threads) /. float_of_int lim.max_threads_per_sm

(** The register bound r0 of Fig. 6, lines 13-16:

      b1 <- SMNRegs / (d1 * NRegs(S1))
      b2 <- SMNRegs / (d2 * NRegs(S2))
      b0 <- min(min(b1, b2), SMShMem / ShMem(F), SMNThreads / d0)
      r0 <- SMNRegs / (b0 * d0)

    i.e. make the fused kernel run as many blocks per SM as the more
    constrained of the two inputs, unless the fused kernel's shared
    memory or the thread limit binds first.  Returns [None] when even a
    single fused block cannot fit (b0 = 0), in which case no register
    bound can restore occupancy. *)
let register_bound (lim : sm_limits) ~d1 ~regs1 ~d2 ~regs2 ~fused_smem :
    int option =
  if d1 <= 0 || d2 <= 0 then invalid_arg "register_bound: empty partition";
  let d0 = d1 + d2 in
  (* Fig. 6 uses the raw NRegs values, not the allocation-granularity
     rounding the hardware applies — the bound exists to *set* an
     allocation, so the paper computes it from the compiler's count *)
  let b1 = lim.regs_per_sm / (d1 * max 1 regs1) in
  let b2 = lim.regs_per_sm / (d2 * max 1 regs2) in
  let by_smem =
    if fused_smem = 0 then lim.max_blocks_per_sm
    else lim.smem_per_sm / fused_smem
  in
  let b0 = min (min b1 b2) (min by_smem (lim.max_threads_per_sm / d0)) in
  (* the hardware block-slot limit binds in every case: without this
     clamp a tiny-smem kernel (where [by_smem] is huge and the register
     and thread divisors are loose) computes an impossible residency b0
     and, from it, an over-tight — too small — r0 *)
  let b0 = min b0 lim.max_blocks_per_sm in
  if b0 <= 0 then None
  else
    let r0 = lim.regs_per_sm / (b0 * d0) in
    (* the hardware allocates registers in units of
       [reg_alloc_granularity]: a raw r0 that is not a multiple gets
       rounded back *up* at launch, which can cross a breakpoint and
       cost a block per SM — exactly the occupancy the bound exists to
       protect.  Align down (floor), never below one allocation unit. *)
    let g = lim.reg_alloc_granularity in
    let r0 = max g (r0 / g * g) in
    (* the bound is only meaningful within hardware limits *)
    Some (min r0 lim.max_regs_per_thread)

(** Which resource limits a kernel's occupancy (for reports/ablations). *)
type limiter = Hfuse_analysis.Limits.limiter =
  | By_registers
  | By_threads
  | By_smem
  | By_block_slots

let limiting_resource = Hfuse_analysis.Limits.limiting_resource
let pp_limiter = Hfuse_analysis.Limits.pp_limiter

(** Vertical (standard) kernel fusion — the baseline HFuse is compared
    against (Section II-B): every thread executes kernel 1's statements
    then kernel 2's, with barriers left as full-block [__syncthreads()]
    — which is exactly why the warp scheduler cannot interleave across
    them. *)

type t = {
  fn : Cuda.Ast.fn;
  prog : Cuda.Ast.program;
  block : int;  (** linear block dimension (max of the inputs') *)
  grid : int;
  smem_dynamic : int;
  regs : int;
  param_map1 : (string * string) list;
  param_map2 : (string * string) list;
  src1 : Kernel_info.t;
  src2 : Kernel_info.t;
  sides : Hfuse_analysis.Verifier.side list;
      (** the fusion-safety verifier's view of the two halves *)
}

val info : t -> Kernel_info.t

(** [generate k1 k2] vertically fuses two kernels.  When thread counts
    differ, the smaller kernel's half runs under a thread guard — legal
    only if that kernel is barrier-free (vertical fusion has no partial
    barriers to fall back on).  [barrier_between] inserts a full
    [__syncthreads()] between the halves (off by default: the evaluation
    pairs are independent).  Unless [~check:false], the result is run
    through the static fusion-safety verifier.

    @raise Fuse_common.Fusion_error on a guarded barrier-bearing kernel
    or unnormalisable input.
    @raise Hfuse_analysis.Diag.Unsafe_fusion when [check] (the default)
    and the verifier reports an error-severity diagnostic. *)
val generate :
  ?check:bool ->
  ?limits:Occupancy.sm_limits ->
  ?barrier_between:bool ->
  Kernel_info.t ->
  Kernel_info.t ->
  t

(** Run the fusion-safety verifier on an already-generated fusion (the
    halves are treated as sequential, so barrier-id reuse across them is
    legal).  Never raises; returns all diagnostics. *)
val verify : ?limits:Occupancy.sm_limits -> t -> Hfuse_analysis.Diag.t list

val to_source : t -> string

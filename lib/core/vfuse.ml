(* Vertical (standard) kernel fusion — the baseline HFuse is compared
   against (Section II-B).

   The vertically fused kernel has the same block/grid dimensions as the
   originals; every thread executes K1's statements followed by K2's.
   Barriers stay full-block [__syncthreads()] — which is exactly why the
   warp scheduler cannot interleave instructions across them (the paper's
   explanation of why vertical fusion rarely hides latency).

   The two inputs may have different *shapes* (e.g. (56,16) vs (896,1))
   as long as their total thread counts match: each side's
   threadIdx/blockDim are re-derived from the linear thread id the same
   way horizontal fusion does.  A [__syncthreads()] is inserted between
   the two halves only when K2 reads shared memory K1 wrote — never for
   the independent kernels fused here, but the option is exposed for
   completeness. *)

open Cuda
open Hfuse_frontend

type t = {
  fn : Ast.fn;
  prog : Ast.program;
  block : int;  (** linear block dimension *)
  grid : int;
  smem_dynamic : int;
  regs : int;
  param_map1 : (string * string) list;
  param_map2 : (string * string) list;
  src1 : Kernel_info.t;
  src2 : Kernel_info.t;
  sides : Hfuse_analysis.Verifier.side list;
      (** the fusion-safety verifier's view of the two halves *)
}

let info t : Kernel_info.t =
  {
    Kernel_info.fn = t.fn;
    prog = t.prog;
    block = (t.block, 1, 1);
    grid = t.grid;
    smem_dynamic = t.smem_dynamic;
    regs = t.regs;
    tunability = Kernel_info.Fixed;
  }

(** Run the fusion-safety verifier on an already-generated fusion. *)
let verify ?limits (t : t) : Hfuse_analysis.Diag.t list =
  (* the halves run sequentially, so barrier-id reuse across them is
     legal: verify as non-concurrent sides *)
  Hfuse_analysis.Verifier.verify ?limits ~concurrent:false ~threads:t.block
    ~regs:t.regs ~smem_dynamic:t.smem_dynamic t.sides

(** [generate ?barrier_between k1 k2] vertically fuses two kernels whose
    configured block dimensions have equal totals.  Unless
    [~check:false], the result is run through the static fusion-safety
    verifier and {!Hfuse_analysis.Diag.Unsafe_fusion} is raised when it
    finds an error. *)
let generate ?(check = true) ?(limits = Occupancy.pascal_volta_limits)
    ?(barrier_between = false) (k1 : Kernel_info.t) (k2 : Kernel_info.t) : t
    =
  let d1 = Kernel_info.threads_per_block k1 in
  let d2 = Kernel_info.threads_per_block k2 in
  let d0 = max d1 d2 in
  let f1 = Inline.normalize_kernel k1.prog k1.fn in
  let f2 = Inline.normalize_kernel k2.prog k2.fn in
  let pool = Rename.create () in
  Rename.reserve pool Fuse_common.dyn_smem_name;
  let p1 = Fuse_common.prepare pool { k1 with fn = f1 } in
  let p2 = Fuse_common.prepare pool { k2 with fn = f2 } in
  let global_tid = Rename.fresh pool "global_tid" in
  let geo1, map1 =
    Fuse_common.geometry_prologue pool ~tag:"1" ~base:None ~block:k1.block
      global_tid
  in
  let geo2, map2 =
    Fuse_common.geometry_prologue pool ~tag:"2" ~base:None ~block:k2.block
      global_tid
  in
  let body1 = Builtins.replace map1 p1.body in
  let body2 = Builtins.replace map2 p2.body in
  let off2 = Fuse_common.align_up k1.smem_dynamic 16 in
  let smem_dynamic = off2 + k2.smem_dynamic in
  let dyn_decls =
    if p1.extern_shared = [] && p2.extern_shared = [] then []
    else
      Ast.decl ~storage:Ast.Shared_extern Fuse_common.dyn_smem_name
        (Ctype.Array (Ctype.UChar, None))
      :: (Fuse_common.bind_extern_shared p1 ~offset:0
         @ Fuse_common.bind_extern_shared p2 ~offset:off2)
  in
  let grid = max k1.grid k2.grid in
  let open Ast in
  let decl_stmts ds = List.map (fun d -> mk_stmt (Decl d)) ds in
  (* when grids differ, wrap the smaller kernel's half in a blockIdx
     guard; an [If] (not goto) keeps barriers legal only when the guard is
     block-uniform, which blockIdx guards are *)
  let wrap gk body =
    if gk < grid then
      [ mk_stmt (If (Binop (Lt, Builtin (Block_idx X), int_lit gk), body, []))
      ]
    else body
  in
  (* when thread counts differ (two fixed-dimension kernels, e.g. the
     128-thread Ethash against a 256-thread miner), the fused block takes
     the larger count and the smaller kernel's half runs under a thread
     guard.  That guard is NOT block-uniform, so it is only legal for a
     barrier-free kernel — vertical fusion has no partial barriers to
     fall back on, which is exactly the limitation HFuse's bar.sync
     rewriting removes. *)
  let thread_guard dk body =
    if dk < d0 then begin
      if Ast_util.has_barrier body then
        Fuse_common.fail
          "vertical fusion cannot guard a %d-thread kernel with barriers \
           inside a %d-thread block"
          dk d0;
      [ mk_stmt (If (Binop (Lt, Var global_tid, int_lit dk), body, [])) ]
    end
    else body
  in
  let body =
    (mk_stmt
       (Decl
          {
            d_name = global_tid;
            (* unsigned, matching the builtins it stands in for *)
            d_type = Ctype.UInt;
            d_storage = Local;
            d_init = Some Fuse_common.global_tid_init;
          })
    :: geo1)
    @ geo2 @ dyn_decls
    @ decl_stmts (p1.decls @ p2.decls)
    @ wrap k1.grid (thread_guard d1 body1)
    @ (if barrier_between then [ mk_stmt Sync ] else [])
    @ wrap k2.grid (thread_guard d2 body2)
  in
  let fn =
    {
      f_name = k1.fn.f_name ^ "_" ^ k2.fn.f_name ^ "_vfused";
      f_kind = Global;
      f_params = p1.params @ p2.params;
      f_ret = Ctype.Void;
      f_body = body;
      f_launch_bounds = None;
    }
  in
  let prog = { Ast.defines = []; functions = [ fn ] } in
  (* each half's share is its own thread count: a smaller half runs
     under a thread guard and is barrier-free (enforced above), so its
     count is [dk], not [d0] *)
  let side1 =
    Fuse_common.verifier_side ~label:k1.fn.f_name ~count:d1 ~dyn_offset:0
      ~tainted:(global_tid :: Fuse_common.mapping_tid_vars map1)
      p1 body1
  in
  let side2 =
    Fuse_common.verifier_side ~label:k2.fn.f_name ~count:d2 ~dyn_offset:off2
      ~tainted:(global_tid :: Fuse_common.mapping_tid_vars map2)
      p2 body2
  in
  let t =
    {
      fn;
      prog;
      block = d0;
      grid;
      smem_dynamic;
      (* vertical fusion: one thread runs both kernels' code in sequence;
         live ranges are disjoint across the two halves, but nvcc keeps the
         union of the hot values live, so pressure is close to the max plus
         a margin — same model as horizontal *)
      regs = Fuse_common.fused_regs k1.regs k2.regs;
      param_map1 = p1.param_map;
      param_map2 = p2.param_map;
      src1 = k1;
      src2 = k2;
      sides = [ side1; side2 ];
    }
  in
  if check then Hfuse_analysis.Diag.raise_if_unsafe (verify ~limits t);
  t

let to_source (t : t) : string = Pretty.program_to_string t.prog

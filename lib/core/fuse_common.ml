(* Machinery shared by horizontal (Fig. 5) and vertical fusion:
   parameter merging, local/label renaming against a common pool,
   dynamic shared-memory layout, and thread-geometry mappings.

   Both fusers consume kernels already normalised by
   {!Hfuse_frontend.Inline.normalize_kernel} (macros expanded, device
   calls inlined, shadowing resolved, declarations lifted). *)

open Cuda
open Hfuse_frontend

exception Fusion_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Fusion_error s)) fmt

(** One input kernel, prepared for splicing into a fused kernel. *)
type prepared = {
  info : Kernel_info.t;
  params : Ast.param list;  (** renamed fused-kernel parameters *)
  param_map : (string * string) list;
      (** (original param name, fused param name) *)
  decls : Ast.decl list;  (** renamed lifted local declarations *)
  body : Ast.stmt list;  (** renamed non-declaration statements *)
  extern_shared : (string * Ctype.t) list;
      (** renamed extern __shared__ arrays: (name, element type) *)
}

(** Split a lifted body into its leading declarations and the rest. *)
let split_lifted (body : Ast.stmt list) : Ast.decl list * Ast.stmt list =
  let rec go acc = function
    | { Ast.s = Ast.Decl d; _ } :: rest -> go (d :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let decls, rest = go [] body in
  if not (Lift_decls.is_lifted body) then
    fail "kernel body is not in lifted form (run normalize_kernel first)";
  (decls, rest)

(** Prepare one input kernel: rename its parameters, locals and labels to
    be fresh w.r.t. [pool] (which accumulates), and extract its extern
    shared arrays. *)
let prepare (pool : Rename.pool) (info : Kernel_info.t) : prepared =
  let fn = info.fn in
  let decls, body = split_lifted fn.f_body in
  (* parameters *)
  let param_map, params =
    List.fold_left
      (fun (map, ps) (p : Ast.param) ->
        let name' = Rename.fresh pool p.p_name in
        ((p.p_name, name') :: map, { p with p_name = name' } :: ps))
      ([], []) fn.f_params
    |> fun (m, ps) -> (List.rev m, List.rev ps)
  in
  let subst = Hashtbl.create 8 in
  List.iter
    (fun (old_name, new_name) ->
      if not (String.equal old_name new_name) then
        Hashtbl.replace subst old_name (Ast.Var new_name))
    param_map;
  let body = Ast_util.subst_vars subst body in
  let decls =
    List.map
      (fun (d : Ast.decl) ->
        {
          d with
          d_init =
            Option.map
              (Ast_util.map_expr (fun e ->
                   match e with
                   | Var x -> (
                       match Hashtbl.find_opt subst x with
                       | Some e' -> e'
                       | None -> e)
                   | e -> e))
              d.d_init;
        })
      decls
  in
  (* locals: wrap back into stmts to reuse rename_locals *)
  let decl_stmts = List.map (fun d -> Ast.mk_stmt (Ast.Decl d)) decls in
  let all, _table = Rename.rename_locals pool (decl_stmts @ body) in
  let decls, body = split_lifted all in
  let body = Rename.rename_labels pool body in
  let extern_shared =
    List.filter_map
      (fun (d : Ast.decl) ->
        match (d.d_storage, d.d_type) with
        | Ast.Shared_extern, Ctype.Array (el, None) -> Some (d.d_name, el)
        | Ast.Shared_extern, t ->
            fail "extern __shared__ %s has non-array type %s" d.d_name
              (Ctype.to_string t)
        | _ -> None)
      decls
  in
  let decls =
    List.filter
      (fun (d : Ast.decl) -> d.d_storage <> Ast.Shared_extern)
      decls
  in
  { info; params; param_map; decls; body; extern_shared }

(** Name of the unified dynamic shared-memory buffer of fused kernels. *)
let dyn_smem_name = "__hf_dyn_smem"

(** Rewrite a prepared kernel's extern-shared arrays as pointers into the
    unified buffer at [offset] (bytes).  Returns replacement declarations
    (with initialisers — they are emitted in the fused prologue, before
    any goto) and the adjusted body. *)
let bind_extern_shared (p : prepared) ~(offset : int) : Ast.stmt list =
  List.map
    (fun (name, el) ->
      let init =
        Ast.Cast
          ( Ctype.Ptr el,
            Ast.Binop (Ast.Add, Ast.Var dyn_smem_name, Ast.int_lit offset) )
      in
      Ast.decl ~init name (Ctype.Ptr el))
    p.extern_shared

(** Align [n] up to [a] bytes (dynamic shared-memory slices are 16-byte
    aligned, as nvcc guarantees for extern smem). *)
let align_up n a = (n + a - 1) / a * a

(** Thread-geometry mapping for one input kernel inside the fused block.

    The fused kernel is launched with a 1-D block; [base] is subtracted
    from the fused linear thread id to obtain the input kernel's linear
    id, which is then unflattened to the input kernel's (x, y, z) shape
    per the prologue of Fig. 4.  Returns (prologue statements, builtin
    mapping) where the mapping sends [threadIdx.*]/[blockDim.*] of the
    original kernel to the prologue-defined variables. *)
let geometry_prologue (pool : Rename.pool) ~(tag : string)
    ~(base : Ast.expr option) ~(block : int * int * int) (global_tid : string)
    : Ast.stmt list * Builtins.mapping =
  let bx, by, bz = block in
  let lin =
    match base with
    | None -> Ast.Var global_tid
    | Some b -> Ast.Binop (Ast.Sub, Ast.Var global_tid, b)
  in
  let tid_x = Rename.fresh pool ("tid" ^ tag ^ "_x") in
  let bdim_x = Rename.fresh pool ("bdim" ^ tag ^ "_x") in
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  emit (Ast.decl ~init:(Ast.int_lit ~ty:Ctype.UInt bx) bdim_x Ctype.UInt);
  (* 1-D kernels: tid_x is just the (re-based) linear id. *)
  if by = 1 && bz = 1 then begin
    emit (Ast.decl ~init:lin tid_x Ctype.UInt);
    let m =
      Builtins.of_vars ~tid_x ~tid_y:tid_x ~tid_z:tid_x ~bdim_x
        ~bdim_y:bdim_x ~bdim_z:bdim_x
    in
    (* y/z should never be consulted for a 1-D kernel; give them real
       variables anyway so generated code stays compilable *)
    let m' =
      {
        Builtins.tid =
          (function
          | Ast.X -> m.Builtins.tid Ast.X
          | Ast.Y | Ast.Z -> Ast.int_lit ~ty:Ctype.UInt 0);
        bdim =
          (function
          | Ast.X -> m.Builtins.bdim Ast.X
          | Ast.Y | Ast.Z -> Ast.int_lit ~ty:Ctype.UInt 1);
      }
    in
    (List.rev !stmts, m')
  end
  else begin
    let tid_y = Rename.fresh pool ("tid" ^ tag ^ "_y") in
    let tid_z = Rename.fresh pool ("tid" ^ tag ^ "_z") in
    let bdim_y = Rename.fresh pool ("bdim" ^ tag ^ "_y") in
    let bdim_z = Rename.fresh pool ("bdim" ^ tag ^ "_z") in
    emit (Ast.decl ~init:(Ast.int_lit ~ty:Ctype.UInt by) bdim_y Ctype.UInt);
    emit (Ast.decl ~init:(Ast.int_lit ~ty:Ctype.UInt bz) bdim_z Ctype.UInt);
    (* x = lin % bx; y = lin / bx % by; z = lin / (bx*by) *)
    emit
      (Ast.decl ~init:(Ast.Binop (Ast.Mod, lin, Ast.Var bdim_x)) tid_x
         Ctype.UInt);
    emit
      (Ast.decl
         ~init:
           (Ast.Binop
              ( Ast.Mod,
                Ast.Binop (Ast.Div, lin, Ast.Var bdim_x),
                Ast.Var bdim_y ))
         tid_y Ctype.UInt);
    emit
      (Ast.decl
         ~init:
           (Ast.Binop
              (Ast.Div, lin, Ast.Binop (Ast.Mul, Ast.Var bdim_x, Ast.Var bdim_y)))
         tid_z Ctype.UInt);
    ( List.rev !stmts,
      Builtins.of_vars ~tid_x ~tid_y ~tid_z ~bdim_x ~bdim_y ~bdim_z )
  end

(** The fused linear thread id, computed as in Fig. 4 line 3 so the fused
    kernel works under any launch block shape. *)
let global_tid_init : Ast.expr =
  let open Ast in
  Binop
    ( Add,
      Binop
        ( Add,
          Builtin (Thread_idx X),
          Binop (Mul, Builtin (Thread_idx Y), Builtin (Block_dim X)) ),
      Binop
        ( Mul,
          Builtin (Thread_idx Z),
          Binop (Mul, Builtin (Block_dim X), Builtin (Block_dim Y)) ) )

(** Register estimate for a fused kernel: per-thread register pressure is
    the maximum over the two code paths (each thread executes only one),
    plus the prologue's live values (tid mapping). *)
let fused_regs (r1 : int) (r2 : int) : int = max r1 r2 + 4

(** The prologue-defined variables a geometry mapping substitutes for
    [threadIdx.*] — thread-dependent seeds for the verifier's taint
    analysis (their definitions live outside the side's body). *)
let mapping_tid_vars (m : Builtins.mapping) : string list =
  List.sort_uniq compare
    (List.filter_map
       (fun d ->
         match m.Builtins.tid d with Ast.Var x -> Some x | _ -> None)
       [ Ast.X; Ast.Y; Ast.Z ])

(** Assemble the fusion-safety verifier's view of one prepared input
    kernel: its share of the block, its (re)assigned barrier, its
    dynamic shared region at [dyn_offset] within the unified buffer, its
    static [__shared__] declarations, and the thread-dependent seed
    variables. *)
let verifier_side ?bar ~label ~count ~dyn_offset ~tainted (p : prepared)
    (body : Ast.stmt list) : Hfuse_analysis.Verifier.side =
  let dyn =
    List.map
      (fun (name, _) ->
        {
          Hfuse_analysis.Verifier.r_name = name;
          r_bytes = p.info.smem_dynamic;
          r_offset = dyn_offset;
          r_dynamic = true;
        })
      p.extern_shared
  in
  let static =
    List.filter_map
      (fun (d : Ast.decl) ->
        match d.d_storage with
        | Ast.Shared ->
            Some
              {
                Hfuse_analysis.Verifier.r_name = d.d_name;
                r_bytes =
                  (try Ctype.sizeof d.d_type with Invalid_argument _ -> 0);
                r_offset = 0;
                r_dynamic = false;
              }
        | _ -> None)
      p.decls
  in
  Hfuse_analysis.Verifier.side ?bar ~shared:(dyn @ static) ~tainted ~label
    ~count body

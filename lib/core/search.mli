(** The fusion-configuration search — Main() of Fig. 6.

    For every thread-space partition, profile the fused kernel twice:
    as-is, and under the register bound r0 of
    {!Occupancy.register_bound}; keep the fastest candidate.  Profiling
    is a callback: the harness plugs in the cycle-level simulator, tests
    plug in synthetic cost functions, a hardware deployment would plug
    in nvcc+nvprof. *)

type config = { partition : Partition.t; reg_bound : int option }

val pp_config : config Fmt.t

(** One profiled candidate.  [repaired] marks provenance: the partition
    was first rejected by the verifier, then admitted by the repair
    engine (and its caller's differential soundness gate). *)
type candidate = {
  fused : Hfuse.t;
  config : config;
  time : float;
  repaired : bool;
}

type result = {
  best : candidate;
  all : candidate list;  (** every profiled candidate, in search order *)
  rejected : (Partition.t * Hfuse_analysis.Diag.t list) list;
      (** partitions the fusion-safety verifier refused — and, when a
          [repair] callback ran, repair could not soundly fix — with
          their original diagnostics (never profiled) *)
  pruned : (Hfuse.t * config * float) list;
      (** verified candidates the phase-1.5 ranking cut before
          profiling (search order, with their model scores); empty
          unless both [rank] and [top_k] were given and binding *)
  scores : float list;
      (** model scores of the profiled candidates, aligned with [all];
          empty when no [rank] callback was supplied *)
  admitted : int;  (** partitions the verifier accepted directly *)
  repaired : int;  (** partitions admitted only via repair *)
}

(** What a [repair] callback hands back when it can fix a rejected
    partition: the repaired fused kernel (regenerated from transformed
    inputs) and the register bound the repair forces, if any. *)
type repair_outcome = { r_fused : Hfuse.t; r_reg_bound : int option }

exception No_valid_partition of string

(** [search ~profile ~d0 k1 k2] runs the Fig. 6 algorithm in two
    phases: a serial phase enumerates partitions, generates and
    verifies the fused kernels and computes register bounds, building
    the candidate list in search order; a second phase evaluates the
    candidates.  [profile fused ~reg_bound] must return the fused
    kernel's running time under the given register bound (any
    consistent unit).

    Each partition's fused kernel passes through the static
    fusion-safety verifier before any profiling; rejected partitions
    are recorded in [result.rejected] and never profiled.  A register
    bound r0 that would not constrain the kernel (r0 at or above the
    fused register estimate) is also skipped — the unbounded profile
    already covers it.

    @param limits SM resource limits for the register bound and the
           partition/verifier thread caps (default: the Pascal/Volta
           values the paper uses).
    @param profile_batch when given, phase 2 hands it the whole
           candidate list instead of calling [profile] per candidate —
           the hook that lets a harness fan pure timing runs out over a
           domain pool and consult a persistent profiling cache.  It
           must return one time per candidate, in candidate order
           ([Invalid_argument] otherwise); [best] tie-breaking (first
           strictly-fastest in search order) is then identical to the
           serial path whatever the evaluation strategy.
    @param rank analytical cost model (phase 1.5): given the whole
           verified candidate list, returns one score per candidate in
           order (lower is better; [Invalid_argument] on a length
           mismatch).  Scores are recorded in [result.scores]; with
           [top_k] they drive pruning.
    @param top_k profile only the [top_k] best-scored candidates
           (clamped to at least 1); the rest land in [result.pruned]
           un-profiled.  Ties keep search order and the survivors are
           profiled in search order, so a [top_k] at or above the
           candidate count — or an absent [rank] — leaves the search
           bit-identical to the exhaustive one.
    @param d0 desired fused block dimension (1024 for tunable pairs;
           ignored when both kernels are fixed).
    @param repair called on each verifier-rejected partition with the
           kernels configured at the partition's block dimensions and
           the rejection diagnostics.  Returning [Some outcome] admits
           the repaired fusion as a candidate with [repaired = true]
           and the outcome's register bound; [None] keeps the
           rejection.  The callback is responsible for re-verification
           AND for the differential soundness gate — the search admits
           its outcome as-is.
    @param on_reject called once per finally-rejected partition (after
           any [repair] attempt), in search order.  Unlike
           [result.rejected], this also fires when every partition is
           rejected and the search raises {!No_valid_partition} —
           the hook the harness's rejection histograms rely on.
    @raise No_valid_partition when the pair admits no partition, or
           the verifier rejects every partition. *)
val search :
  ?limits:Occupancy.sm_limits ->
  ?profile_batch:((Hfuse.t * config) list -> float list) ->
  ?rank:((Hfuse.t * config) list -> float list) ->
  ?top_k:int ->
  ?repair:
    (k1:Kernel_info.t ->
    k2:Kernel_info.t ->
    Hfuse_analysis.Diag.t list ->
    repair_outcome option) ->
  ?on_reject:(Partition.t -> Hfuse_analysis.Diag.t list -> unit) ->
  profile:(Hfuse.t -> reg_bound:int option -> float) ->
  d0:int ->
  Kernel_info.t ->
  Kernel_info.t ->
  result

(** The Naive evaluation variant: even partition, no profiling, no
    register bound. *)
val naive : d0:int -> Kernel_info.t -> Kernel_info.t -> Hfuse.t option

(* Synchronisation-barrier replacement (Fig. 5, lines 5-6).

   [__syncthreads()] in an input kernel would, inside the fused kernel,
   wait for *all* threads of the fused block — including the other
   kernel's threads, which never reach it: deadlock.  HFuse replaces each
   barrier with the inline PTX instruction [bar.sync id, count], a partial
   barrier that synchronises exactly [count] threads on hardware barrier
   [id].  Each input kernel gets its own barrier id, and [count] is the
   input kernel's block dimension. *)

open Cuda

(** PTX limits the barrier id to 0..15 (the paper cites the PTX ISA);
    id 0 is the one [__syncthreads] itself uses, so fused kernels use ids
    starting at 1. *)
let max_barrier_id = 15

exception Invalid_barrier of string

(** Replace every [__syncthreads()] in [stmts] with [bar.sync id, count].
    Existing [bar.sync] statements (e.g. from an already-fused kernel
    being fused again) are left untouched — their ids must not collide
    with [id]; the fusion-safety verifier
    ({!Hfuse_analysis.Verifier.verify}) reports any collision between
    the fused sides' id sets. *)
let replace ~id ~count (stmts : Ast.stmt list) : Ast.stmt list =
  if id < 1 || id > max_barrier_id then
    raise
      (Invalid_barrier
         (Fmt.str "barrier id %d out of range 1..%d" id max_barrier_id));
  if count <= 0 || count mod 32 <> 0 then
    raise
      (Invalid_barrier
         (Fmt.str
            "bar.sync thread count %d must be a positive multiple of the \
             warp size"
            count));
  Ast_util.map_stmts
    (fun s ->
      match s.s with
      | Sync -> [ { s with s = Bar_sync (id, count) } ]
      | _ -> [ s ])
    stmts

(** Barrier ids already used by [bar.sync] statements in [stmts]. *)
let used_ids (stmts : Ast.stmt list) : int list =
  List.sort_uniq compare
    (Ast_util.fold_stmts
       (fun acc s ->
         match s.s with Bar_sync (id, _) -> id :: acc | _ -> acc)
       [] stmts)

(** First id in 1..15 not in [used]; raises {!Invalid_barrier} when all
    ids are exhausted (fusing more than 15 barrier-bearing kernels). *)
let fresh_id (used : int list) : int =
  let rec go i =
    if i > max_barrier_id then
      raise (Invalid_barrier "no free hardware barrier id (1..15 all used)")
    else if List.mem i used then go (i + 1)
    else i
  in
  go 1
